package storage

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"

	"monetlite/internal/mtypes"
	"monetlite/internal/pagemap"
	"monetlite/internal/strheap"
	"monetlite/internal/vec"
)

// Column file formats (native endianness, like MonetDB's on-disk BATs —
// database directories are not portable across byte orders). The full spec
// lives in docs/STORAGE_FORMAT.md; both versions share a 16-byte header
// that keeps the payload 8-byte aligned so mapped files can be
// reinterpreted as typed slices in place.
//
// MLC1 — raw columns:
//
//	offset 0:  magic "MLC1"
//	offset 4:  kind (uint8), scale (uint8), reserved (2 bytes)
//	offset 8:  count (uint64)
//	offset 16: fixed-width: raw values (count * width bytes)
//	           varchar:     offsets (count * 4 bytes), heapLen (uint64),
//	                        heap bytes
//
// MLC2 — encoded columns (byte 6 of the header selects the encoding):
//
//	offset 0:  magic "MLC2"
//	offset 4:  kind (uint8), scale (uint8), enc (uint8), reserved (1 byte)
//	offset 8:  count (uint64)
//	offset 16: encoding-specific body (see writeEncodedColumnFile)
//
// Readers dispatch on the magic: a database written before compression
// existed contains only MLC1 files and opens unchanged, and columns that
// don't benefit from encoding keep being written as MLC1.
const columnMagic = "MLC1"

const columnMagicV2 = "MLC2"

const columnHeaderSize = 16

func encodeColumnHeader(typ mtypes.Type, count int) []byte {
	h := make([]byte, columnHeaderSize)
	copy(h, columnMagic)
	h[4] = byte(typ.Kind)
	h[5] = byte(typ.Scale)
	binary.LittleEndian.PutUint64(h[8:], uint64(count))
	return h
}

// writeColumnFile persists a column's physical state atomically
// (write-to-temp + rename).
func writeColumnFile(path string, typ mtypes.Type, data *vec.Vector, heap *strheap.Heap, offs []uint32) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	n := data.Len()
	if _, err := f.Write(encodeColumnHeader(typ, n)); err != nil {
		f.Close()
		return err
	}
	var payload []byte
	switch typ.Kind {
	case mtypes.KBool, mtypes.KTinyInt:
		payload = pagemap.BytesOfInt8s(data.I8)
	case mtypes.KSmallInt:
		payload = pagemap.BytesOfInt16s(data.I16)
	case mtypes.KInt, mtypes.KDate:
		payload = pagemap.BytesOfInt32s(data.I32)
	case mtypes.KBigInt, mtypes.KDecimal:
		payload = pagemap.BytesOfInt64s(data.I64)
	case mtypes.KDouble:
		payload = pagemap.BytesOfFloat64s(data.F64)
	case mtypes.KVarchar:
		if len(offs) != n {
			f.Close()
			return fmt.Errorf("storage: varchar offsets out of sync (%d vs %d)", len(offs), n)
		}
		if _, err := f.Write(pagemap.BytesOfUint32s(offs)); err != nil {
			f.Close()
			return err
		}
		hb := heap.Bytes()
		var lenBuf [8]byte
		binary.LittleEndian.PutUint64(lenBuf[:], uint64(len(hb)))
		if _, err := f.Write(lenBuf[:]); err != nil {
			f.Close()
			return err
		}
		payload = hb
	default:
		f.Close()
		return fmt.Errorf("storage: cannot persist kind %d", typ.Kind)
	}
	if _, err := f.Write(payload); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}

// writeEncodedColumnFile persists a compressed column atomically in the
// MLC2 format. Encoding-specific bodies (all integers little-endian):
//
//	dict: dictCount u64, codeWidth u64, wordCount u64,
//	      code words (wordCount * 8 bytes, starting at offset 40),
//	      then dictCount entries of {len u32, bytes} in sorted order
//	for:  base u64 (int64 bits), codeMax u64, codeWidth u64, wordCount u64,
//	      code words (starting at offset 48)
//	rle:  runCount u64, run ends (runCount * 4 bytes, int32, exclusive),
//	      zero padding to the next 8-byte boundary,
//	      run values: fixed-width raw payload, or {len u32, bytes} per run
//	      for varchar (NULL runs store the sentinel byte 0x80)
func writeEncodedColumnFile(path string, typ mtypes.Type, e *vec.Encoded) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	fail := func(err error) error { f.Close(); return err }
	h := make([]byte, columnHeaderSize)
	copy(h, columnMagicV2)
	h[4] = byte(typ.Kind)
	h[5] = byte(typ.Scale)
	h[6] = byte(e.Enc)
	binary.LittleEndian.PutUint64(h[8:], uint64(e.N))
	if _, err := f.Write(h); err != nil {
		return fail(err)
	}
	var u64buf [8]byte
	putU64 := func(x uint64) error {
		binary.LittleEndian.PutUint64(u64buf[:], x)
		_, err := f.Write(u64buf[:])
		return err
	}
	switch e.Enc {
	case vec.EncDict:
		if err := putU64(uint64(len(e.Dict))); err != nil {
			return fail(err)
		}
		if err := putU64(uint64(e.Codes.Width)); err != nil {
			return fail(err)
		}
		if err := putU64(uint64(len(e.Codes.Words))); err != nil {
			return fail(err)
		}
		if _, err := f.Write(pagemap.BytesOfUint64s(e.Codes.Words)); err != nil {
			return fail(err)
		}
		var lenBuf [4]byte
		for _, s := range e.Dict {
			binary.LittleEndian.PutUint32(lenBuf[:], uint32(len(s)))
			if _, err := f.Write(lenBuf[:]); err != nil {
				return fail(err)
			}
			if _, err := f.Write([]byte(s)); err != nil {
				return fail(err)
			}
		}
	case vec.EncFOR:
		if err := putU64(uint64(e.Base)); err != nil {
			return fail(err)
		}
		if err := putU64(e.CodeMax); err != nil {
			return fail(err)
		}
		if err := putU64(uint64(e.Codes.Width)); err != nil {
			return fail(err)
		}
		if err := putU64(uint64(len(e.Codes.Words))); err != nil {
			return fail(err)
		}
		if _, err := f.Write(pagemap.BytesOfUint64s(e.Codes.Words)); err != nil {
			return fail(err)
		}
	case vec.EncRLE:
		nruns := len(e.RunEnds)
		if err := putU64(uint64(nruns)); err != nil {
			return fail(err)
		}
		if _, err := f.Write(pagemap.BytesOfInt32s(e.RunEnds)); err != nil {
			return fail(err)
		}
		if nruns%2 != 0 {
			if _, err := f.Write([]byte{0, 0, 0, 0}); err != nil {
				return fail(err)
			}
		}
		if typ.Kind == mtypes.KVarchar {
			var lenBuf [4]byte
			for _, s := range e.RunVals.Str {
				binary.LittleEndian.PutUint32(lenBuf[:], uint32(len(s)))
				if _, err := f.Write(lenBuf[:]); err != nil {
					return fail(err)
				}
				if _, err := f.Write([]byte(s)); err != nil {
					return fail(err)
				}
			}
		} else {
			var payload []byte
			switch typ.Kind {
			case mtypes.KBool, mtypes.KTinyInt:
				payload = pagemap.BytesOfInt8s(e.RunVals.I8)
			case mtypes.KSmallInt:
				payload = pagemap.BytesOfInt16s(e.RunVals.I16)
			case mtypes.KInt, mtypes.KDate:
				payload = pagemap.BytesOfInt32s(e.RunVals.I32)
			case mtypes.KBigInt, mtypes.KDecimal:
				payload = pagemap.BytesOfInt64s(e.RunVals.I64)
			case mtypes.KDouble:
				payload = pagemap.BytesOfFloat64s(e.RunVals.F64)
			default:
				return fail(fmt.Errorf("storage: cannot persist rle kind %d", typ.Kind))
			}
			if _, err := f.Write(payload); err != nil {
				return fail(err)
			}
		}
	default:
		return fail(fmt.Errorf("storage: unknown encoding %d", e.Enc))
	}
	if err := f.Sync(); err != nil {
		return fail(err)
	}
	if err := f.Close(); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}

// decodeEncodedColumnFile reconstructs a compressed column from mapped MLC2
// bytes. Bit-packed code words and RLE payloads are typed views straight
// into the mapping (zero-copy); dictionary entries and varchar run values
// are copied out (they are small by construction).
func decodeEncodedColumnFile(typ mtypes.Type, b []byte) (*vec.Encoded, error) {
	count := int(binary.LittleEndian.Uint64(b[8:]))
	enc := vec.Encoding(b[6])
	body := b[columnHeaderSize:]
	need := func(n int) error {
		if len(body) < n {
			return fmt.Errorf("truncated %s column body", enc)
		}
		return nil
	}
	e := &vec.Encoded{Typ: typ, Enc: enc, N: count}
	switch enc {
	case vec.EncDict:
		if err := need(24); err != nil {
			return nil, err
		}
		dictCount := int(binary.LittleEndian.Uint64(body[0:]))
		width := int(binary.LittleEndian.Uint64(body[8:]))
		wordCount := int(binary.LittleEndian.Uint64(body[16:]))
		if err := need(24 + 8*wordCount); err != nil {
			return nil, err
		}
		words, err := pagemap.Uint64s(body[24 : 24+8*wordCount])
		if err != nil {
			return nil, err
		}
		dict := make([]string, dictCount)
		pos := 24 + 8*wordCount
		for i := range dict {
			if err := need(pos + 4); err != nil {
				return nil, err
			}
			sl := int(binary.LittleEndian.Uint32(body[pos:]))
			pos += 4
			if err := need(pos + sl); err != nil {
				return nil, err
			}
			dict[i] = string(body[pos : pos+sl])
			pos += sl
		}
		e.Codes = vec.NewPackedInts(words, width, count)
		e.CodeMax = uint64(dictCount)
		e.Dict = dict
	case vec.EncFOR:
		if err := need(32); err != nil {
			return nil, err
		}
		e.Base = int64(binary.LittleEndian.Uint64(body[0:]))
		e.CodeMax = binary.LittleEndian.Uint64(body[8:])
		width := int(binary.LittleEndian.Uint64(body[16:]))
		wordCount := int(binary.LittleEndian.Uint64(body[24:]))
		if err := need(32 + 8*wordCount); err != nil {
			return nil, err
		}
		words, err := pagemap.Uint64s(body[32 : 32+8*wordCount])
		if err != nil {
			return nil, err
		}
		e.Codes = vec.NewPackedInts(words, width, count)
	case vec.EncRLE:
		if err := need(8); err != nil {
			return nil, err
		}
		nruns := int(binary.LittleEndian.Uint64(body[0:]))
		if err := need(8 + 4*nruns); err != nil {
			return nil, err
		}
		runEnds, err := pagemap.Int32s(body[8 : 8+4*nruns])
		if err != nil {
			return nil, err
		}
		pos := 8 + 4*nruns
		if nruns%2 != 0 {
			pos += 4
		}
		rv := &vec.Vector{Typ: typ}
		if typ.Kind == mtypes.KVarchar {
			rv.Str = make([]string, nruns)
			for i := range rv.Str {
				if err := need(pos + 4); err != nil {
					return nil, err
				}
				sl := int(binary.LittleEndian.Uint32(body[pos:]))
				pos += 4
				if err := need(pos + sl); err != nil {
					return nil, err
				}
				rv.Str[i] = string(body[pos : pos+sl])
				pos += sl
			}
		} else {
			w := 8
			switch typ.Kind {
			case mtypes.KBool, mtypes.KTinyInt:
				w = 1
			case mtypes.KSmallInt:
				w = 2
			case mtypes.KInt, mtypes.KDate:
				w = 4
			}
			if err := need(pos + w*nruns); err != nil {
				return nil, err
			}
			payload := body[pos : pos+w*nruns]
			switch typ.Kind {
			case mtypes.KBool, mtypes.KTinyInt:
				rv.I8, err = pagemap.Int8s(payload)
			case mtypes.KSmallInt:
				rv.I16, err = pagemap.Int16s(payload)
			case mtypes.KInt, mtypes.KDate:
				rv.I32, err = pagemap.Int32s(payload)
			case mtypes.KBigInt, mtypes.KDecimal:
				rv.I64, err = pagemap.Int64s(payload)
			case mtypes.KDouble:
				rv.F64, err = pagemap.Float64s(payload)
			default:
				return nil, fmt.Errorf("unsupported rle kind %d", typ.Kind)
			}
			if err != nil {
				return nil, err
			}
		}
		e.RunVals = rv
		e.RunEnds = runEnds
		if nruns > 0 && int(runEnds[nruns-1]) != count {
			return nil, fmt.Errorf("rle run ends inconsistent with row count")
		}
	default:
		return nil, fmt.Errorf("unknown column encoding %d", b[6])
	}
	return e, nil
}

// decodeColumnFile reconstructs a column from mapped file bytes, dispatching
// on the format magic. Raw (MLC1) files yield a data vector (fixed-width
// payloads are typed views straight into the mapping; varchar strings alias
// the mapped heap bytes). Encoded (MLC2) files yield only the compressed
// form — the data vector is decoded lazily on first raw access.
func decodeColumnFile(typ mtypes.Type, b []byte) (*vec.Vector, *strheap.Heap, []uint32, *vec.Encoded, error) {
	if len(b) < columnHeaderSize {
		return nil, nil, nil, nil, fmt.Errorf("bad column file header")
	}
	if string(b[:4]) == columnMagicV2 {
		if mtypes.Kind(b[4]) != typ.Kind {
			return nil, nil, nil, nil, fmt.Errorf("column kind mismatch: file %d, catalog %d", b[4], typ.Kind)
		}
		enc, err := decodeEncodedColumnFile(typ, b)
		if err != nil {
			return nil, nil, nil, nil, err
		}
		return nil, nil, nil, enc, nil
	}
	data, heap, offs, err := decodeRawColumnFile(typ, b)
	return data, heap, offs, nil, err
}

// decodeRawColumnFile handles the MLC1 (raw) format.
func decodeRawColumnFile(typ mtypes.Type, b []byte) (*vec.Vector, *strheap.Heap, []uint32, error) {
	if string(b[:4]) != columnMagic {
		return nil, nil, nil, fmt.Errorf("bad column file header")
	}
	if mtypes.Kind(b[4]) != typ.Kind {
		return nil, nil, nil, fmt.Errorf("column kind mismatch: file %d, catalog %d", b[4], typ.Kind)
	}
	count := int(binary.LittleEndian.Uint64(b[8:]))
	body := b[columnHeaderSize:]
	v := &vec.Vector{Typ: typ}
	var err error
	switch typ.Kind {
	case mtypes.KBool, mtypes.KTinyInt:
		v.I8, err = pagemap.Int8s(body[:count])
	case mtypes.KSmallInt:
		v.I16, err = pagemap.Int16s(body[:2*count])
	case mtypes.KInt, mtypes.KDate:
		v.I32, err = pagemap.Int32s(body[:4*count])
	case mtypes.KBigInt, mtypes.KDecimal:
		v.I64, err = pagemap.Int64s(body[:8*count])
	case mtypes.KDouble:
		v.F64, err = pagemap.Float64s(body[:8*count])
	case mtypes.KVarchar:
		if len(body) < 4*count+8 {
			return nil, nil, nil, fmt.Errorf("truncated varchar column")
		}
		var offs []uint32
		offs, err = pagemap.Uint32s(body[:4*count])
		if err != nil {
			return nil, nil, nil, err
		}
		heapLen := int(binary.LittleEndian.Uint64(body[4*count:]))
		heapBytes := body[4*count+8:]
		if len(heapBytes) < heapLen {
			return nil, nil, nil, fmt.Errorf("truncated varchar heap")
		}
		heap, herr := strheap.FromBytes(heapBytes[:heapLen], true)
		if herr != nil {
			return nil, nil, nil, herr
		}
		v.Str = make([]string, count)
		for i, off := range offs {
			if heap.IsNull(off) {
				v.Str[i] = vec.StrNull
			} else {
				v.Str[i] = heap.Get(off)
			}
		}
		// offs must be mutable for future appends: copy out of the mapping.
		ownOffs := make([]uint32, count)
		copy(ownOffs, offs)
		return v, heap, ownOffs, nil
	default:
		return nil, nil, nil, fmt.Errorf("unsupported kind %d", typ.Kind)
	}
	if err != nil {
		return nil, nil, nil, err
	}
	return v, nil, nil, nil
}

// ---------------------------------------------------------------------------
// Catalog file.
// ---------------------------------------------------------------------------

type catalogJSON struct {
	Version uint64        `json:"version"`
	Tables  []tableJSON   `json:"tables"`
	Orders  []orderedIdxJ `json:"order_indexes,omitempty"`
}

type tableJSON struct {
	Name  string    `json:"name"`
	Cols  []colJSON `json:"cols"`
	NRows int       `json:"nrows"`
	Dels  []int32   `json:"dels,omitempty"`
}

type colJSON struct {
	Name  string `json:"name"`
	Kind  uint8  `json:"kind"`
	Prec  int    `json:"prec,omitempty"`
	Scale int    `json:"scale,omitempty"`
	Width int    `json:"width,omitempty"`
}

type orderedIdxJ struct {
	Table string `json:"table"`
	Col   string `json:"col"`
}

const catalogName = "catalog.json"

func (s *Store) columnPath(table, col string) string {
	return filepath.Join(s.dir, fmt.Sprintf("%s.%s.col", table, col))
}

// saveCatalogLocked writes catalog.json atomically. Caller holds s.mu.
func (s *Store) saveCatalogLocked() error {
	cat := catalogJSON{Version: s.version}
	for _, name := range s.tableNamesLocked() {
		t := s.tables[name]
		tv := t.Version()
		tj := tableJSON{Name: t.Meta.Name, NRows: tv.NRows, Dels: tv.Dels.Slots()}
		for _, cd := range t.Meta.Cols {
			tj.Cols = append(tj.Cols, colJSON{
				Name: cd.Name, Kind: uint8(cd.Typ.Kind),
				Prec: cd.Typ.Prec, Scale: cd.Typ.Scale, Width: cd.Typ.Width,
			})
		}
		cat.Tables = append(cat.Tables, tj)
		for ci, ix := range t.idx {
			if ix.order != nil {
				cat.Orders = append(cat.Orders, orderedIdxJ{Table: t.Meta.Name, Col: t.Meta.Cols[ci].Name})
			}
		}
	}
	data, err := json.MarshalIndent(&cat, "", " ")
	if err != nil {
		return err
	}
	tmp := filepath.Join(s.dir, catalogName+".tmp")
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, filepath.Join(s.dir, catalogName))
}

// loadCatalog reads catalog.json and wires up lazily loaded tables.
func (s *Store) loadCatalog() error {
	data, err := os.ReadFile(filepath.Join(s.dir, catalogName))
	if err != nil {
		return err
	}
	var cat catalogJSON
	if err := json.Unmarshal(data, &cat); err != nil {
		return fmt.Errorf("storage: corrupt catalog: %w", err)
	}
	s.version = cat.Version
	for _, tj := range cat.Tables {
		meta := TableMeta{Name: tj.Name}
		for _, cj := range tj.Cols {
			meta.Cols = append(meta.Cols, ColDef{
				Name: cj.Name,
				Typ:  mtypes.Type{Kind: mtypes.Kind(cj.Kind), Prec: cj.Prec, Scale: cj.Scale, Width: cj.Width},
			})
		}
		t := newTable(meta)
		for i, cd := range meta.Cols {
			t.cols[i] = FileColumn(cd.Typ, s.columnPath(tj.Name, cd.Name))
		}
		var dels *Bitmap
		if len(tj.Dels) > 0 {
			dels = NewBitmap(tj.NRows)
			for _, r := range tj.Dels {
				dels.Set(r)
			}
		}
		// On-disk state is always fully merged: checkpoints fold any pending
		// append-delta into the persisted columns, so the loaded base covers
		// every cataloged row. Delta durability between checkpoints comes from
		// WAL replay, whose appends extend past this boundary.
		t.baseRows = tj.NRows
		t.publish(&TableVersion{Version: cat.Version, NRows: tj.NRows, BaseRows: tj.NRows, Dels: dels, table: t})
		s.tables[tj.Name] = t
	}
	// Rebuild persisted order indexes lazily: mark them requested so the
	// first access rebuilds (cheap bookkeeping, avoids loading columns now).
	for _, oj := range cat.Orders {
		if t, ok := s.tables[oj.Table]; ok {
			if ci := t.Meta.ColIndex(oj.Col); ci >= 0 {
				t.idx[ci].orderWanted = true
			}
		}
	}
	return nil
}

// Checkpoint persists all table data and the catalog. After a successful
// checkpoint the WAL can be truncated by the caller.
func (s *Store) Checkpoint() error {
	if s.dir == "" {
		return nil // in-memory databases persist nothing
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, name := range s.tableNamesLocked() {
		t := s.tables[name]
		tv := t.Version()
		for i, cd := range t.Meta.Cols {
			c := t.cols[i]
			c.mu.Lock()
			if !c.loaded {
				// Never touched since load: on-disk state is already current.
				c.mu.Unlock()
				continue
			}
			if c.data == nil && c.enc != nil && c.enc.N != tv.NRows {
				// Encoded resident form doesn't match the snapshot (possible
				// after crash recovery): decode so the raw path below applies.
				if _, err := c.loadDataLocked(); err != nil {
					c.mu.Unlock()
					return err
				}
			}
			if (c.enc == nil || c.enc.N != tv.NRows) && c.data != nil &&
				tv.NRows >= checkpointEncodeMinRows && c.data.Len() >= tv.NRows {
				// Checkpoint is where encodings are (re)chosen: try to compress
				// the snapshot's rows and cache the result for the executor. An
				// encoding that covers only part of the snapshot (an unmerged
				// append-delta) is folded forward here the same way.
				if e := vec.EncodeColumn(c.data.Slice(0, tv.NRows), 0); e != nil {
					c.enc = e
				}
			}
			if c.enc != nil && c.enc.N == tv.NRows {
				err := writeEncodedColumnFile(s.columnPath(name, cd.Name), cd.Typ, c.enc)
				c.mu.Unlock()
				if err != nil {
					return err
				}
				continue
			}
			if c.Typ.Kind == mtypes.KVarchar && c.heap == nil {
				// Decoded-from-encoded column without a heap: rebuild it for
				// the raw write.
				c.ensureHeapLocked()
			}
			data, heap, offs := c.data.Slice(0, tv.NRows), c.heap, c.offs
			if c.Typ.Kind == mtypes.KVarchar {
				offs = offs[:tv.NRows]
			}
			err := writeColumnFile(s.columnPath(name, cd.Name), cd.Typ, data, heap, offs)
			c.mu.Unlock()
			if err != nil {
				return err
			}
		}
	}
	return s.saveCatalogLocked()
}
