package storage

import (
	"testing"

	"monetlite/internal/mtypes"
	"monetlite/internal/vec"
)

func intVec(vals ...int64) *vec.Vector {
	v := vec.NewCap(mtypes.BigInt, len(vals))
	for _, x := range vals {
		v.AppendValue(mtypes.NewInt(mtypes.BigInt, x))
	}
	return v
}

func TestComputeColStatsExact(t *testing.T) {
	v := intVec(5, 1, 3, 3, 9)
	v.AppendValue(mtypes.NullValue(mtypes.BigInt))
	st := ComputeColStats(v)
	if st.Rows != 6 || st.NullCount != 1 {
		t.Fatalf("rows/nulls = %d/%d, want 6/1", st.Rows, st.NullCount)
	}
	if st.NDV != 4 {
		t.Fatalf("ndv = %d, want 4", st.NDV)
	}
	if !st.HasRange || st.Min.AsInt() != 1 || st.Max.AsInt() != 9 {
		t.Fatalf("range = %v..%v (has=%v), want 1..9", st.Min, st.Max, st.HasRange)
	}
}

func TestComputeColStatsEmptyAndAllNull(t *testing.T) {
	st := ComputeColStats(vec.NewCap(mtypes.Int, 0))
	if st.Rows != 0 || st.HasRange || st.NDV != 0 {
		t.Fatalf("empty column stats = %+v", st)
	}
	v := vec.NewCap(mtypes.Int, 3)
	for i := 0; i < 3; i++ {
		v.AppendValue(mtypes.NullValue(mtypes.Int))
	}
	st = ComputeColStats(v)
	if st.NullCount != 3 || st.HasRange || st.NDV != 0 {
		t.Fatalf("all-null column stats = %+v", st)
	}
}

func TestComputeColStatsSampledBounds(t *testing.T) {
	// Far over the sampling budget: the estimate must stay within [1, nonNull]
	// and min/max must still be exact (full-pass).
	n := statsSampleCap*3 + 17
	v := vec.NewCap(mtypes.BigInt, n)
	for i := 0; i < n; i++ {
		v.AppendValue(mtypes.NewInt(mtypes.BigInt, int64(i%1000)))
	}
	st := ComputeColStats(v)
	if st.NDV < 1 || st.NDV > int64(n) {
		t.Fatalf("ndv = %d out of bounds", st.NDV)
	}
	// Uniform data with heavy repetition: sampled estimate should land near
	// the true 1000 (jackknife sees few singletons).
	if st.NDV > 5000 {
		t.Fatalf("ndv = %d, want near 1000", st.NDV)
	}
	if st.Min.AsInt() != 0 || st.Max.AsInt() != 999 {
		t.Fatalf("range = %v..%v, want 0..999", st.Min, st.Max)
	}
}

func TestStatsForLifecycle(t *testing.T) {
	tbl := NewMemoryTable(TableMeta{Name: "t", Cols: []ColDef{{Name: "a", Typ: mtypes.BigInt}}})
	if _, err := tbl.Append([]*vec.Vector{intVec(1, 2, 2, 7)}, 1); err != nil {
		t.Fatal(err)
	}
	tv := tbl.Version()
	st := tbl.StatsFor(tv, 0)
	if st == nil || st.Rows != 4 || st.NDV != 3 {
		t.Fatalf("stats = %+v", st)
	}
	if again := tbl.StatsFor(tv, 0); again != st {
		t.Fatalf("stats not cached across calls")
	}
	// Stale snapshot after an append: old version must stop serving stats,
	// new version gets fresh ones.
	if _, err := tbl.Append([]*vec.Vector{intVec(9)}, 2); err != nil {
		t.Fatal(err)
	}
	if tbl.StatsFor(tv, 0) != nil {
		t.Fatalf("stale snapshot still served stats")
	}
	st2 := tbl.StatsFor(tbl.Version(), 0)
	if st2 == nil || st2.Rows != 5 || st2.Max.AsInt() != 9 {
		t.Fatalf("post-append stats = %+v", st2)
	}
	// Deletes disable stats entirely (same rule as imprints).
	if _, _, err := tbl.Delete([]int32{0}, 3); err != nil {
		t.Fatal(err)
	}
	if tbl.StatsFor(tbl.Version(), 0) != nil {
		t.Fatalf("deleted table still served stats")
	}
}

func TestStatsEpochMaterialChanges(t *testing.T) {
	tbl := NewMemoryTable(TableMeta{Name: "t", Cols: []ColDef{{Name: "a", Typ: mtypes.BigInt}}})
	e0 := tbl.StatsEpoch()
	// First rows are always material.
	if _, err := tbl.Append([]*vec.Vector{intVec(1, 2, 3)}, 1); err != nil {
		t.Fatal(err)
	}
	e1 := tbl.StatsEpoch()
	if e1 == e0 {
		t.Fatalf("first append did not bump stats epoch")
	}
	// A tiny append onto a table just stamped is immaterial (< 20%, < 4096).
	big := vec.NewCap(mtypes.BigInt, 8000)
	for i := 0; i < 8000; i++ {
		big.AppendValue(mtypes.NewInt(mtypes.BigInt, int64(i)))
	}
	if _, err := tbl.Append([]*vec.Vector{big}, 2); err != nil {
		t.Fatal(err)
	}
	e2 := tbl.StatsEpoch() // 3 -> 8003 rows: material
	if e2 == e1 {
		t.Fatalf("8000-row append did not bump stats epoch")
	}
	if _, err := tbl.Append([]*vec.Vector{intVec(1)}, 3); err != nil {
		t.Fatal(err)
	}
	if tbl.StatsEpoch() != e2 {
		t.Fatalf("1-row append on 8003 rows bumped stats epoch")
	}
	// Deletes always bump.
	if _, _, err := tbl.Delete([]int32{0}, 4); err != nil {
		t.Fatal(err)
	}
	if tbl.StatsEpoch() == e2 {
		t.Fatalf("delete did not bump stats epoch")
	}
}

func TestStoreStatsVersion(t *testing.T) {
	s := NewMemory()
	v0 := s.StatsVersion()
	tbl, err := s.CreateTable(TableMeta{Name: "t", Cols: []ColDef{{Name: "a", Typ: mtypes.BigInt}}})
	if err != nil {
		t.Fatal(err)
	}
	v1 := s.StatsVersion() // schemaVersion moved
	if v1 == v0 {
		t.Fatalf("create table did not move stats version")
	}
	if _, err := tbl.Append([]*vec.Vector{intVec(1, 2)}, 1); err != nil {
		t.Fatal(err)
	}
	if s.StatsVersion() == v1 {
		t.Fatalf("material append did not move stats version")
	}
}
