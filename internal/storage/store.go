package storage

import (
	"errors"
	"fmt"
	"os"
	"sort"
	"sync"

	"monetlite/internal/delta"
)

// Store is a storage-level database: a catalog of tables plus the directory
// (if any) that persists them. A Store with an empty directory is a pure
// in-memory database — the paper's in-memory mode, where shutdown discards
// everything.
type Store struct {
	mu      sync.RWMutex
	dir     string
	tables  map[string]*Table
	version uint64
	// schemaVersion counts DDL changes only (create/drop table). Data commits
	// leave it alone, so cached query plans — which depend on table metadata
	// but not contents — stay valid across ordinary writes and are invalidated
	// exactly when the catalog shape changes.
	schemaVersion uint64
}

// ErrNoSuchTable reports a catalog lookup miss. DropTable wraps it so callers
// can distinguish "table absent" (ignorable under IF EXISTS) from real I/O or
// WAL failures (never ignorable).
var ErrNoSuchTable = errors.New("storage: no such table")

// NewMemory creates an in-memory store.
func NewMemory() *Store {
	return &Store{tables: make(map[string]*Table)}
}

// Open opens (or initializes) a persistent store in dir.
func Open(dir string) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	s := &Store{dir: dir, tables: make(map[string]*Table)}
	if _, err := os.Stat(s.dir + "/" + catalogName); err == nil {
		if err := s.loadCatalog(); err != nil {
			return nil, err
		}
	}
	return s, nil
}

// Dir returns the persistence directory ("" for in-memory stores).
func (s *Store) Dir() string { return s.dir }

// InMemory reports whether the store discards data on close.
func (s *Store) InMemory() bool { return s.dir == "" }

// Version returns the current global commit version.
func (s *Store) Version() uint64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.version
}

// BumpVersion increments and returns the global commit version. Called by
// the transaction layer under its commit lock.
func (s *Store) BumpVersion() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.version++
	return s.version
}

// SchemaVersion returns the DDL-only catalog version (see schemaVersion).
func (s *Store) SchemaVersion() uint64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.schemaVersion
}

// StatsVersion summarizes the statistics epochs of every table (plus the
// schema version, so created/dropped tables move it too). Cost-based plans
// cached by the plan cache are stamped with this value: when any table's
// contents change materially (Table.StatsEpoch), the stamp goes stale and the
// plan is re-optimized against fresh statistics.
func (s *Store) StatsVersion() uint64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	v := s.schemaVersion
	for _, t := range s.tables {
		v += t.StatsEpoch()
	}
	return v
}

// CreateTable adds a new empty table to the catalog.
func (s *Store) CreateTable(meta TableMeta) (*Table, error) {
	if len(meta.Cols) == 0 {
		return nil, fmt.Errorf("storage: table %q needs at least one column", meta.Name)
	}
	seen := map[string]bool{}
	for _, c := range meta.Cols {
		if seen[c.Name] {
			return nil, fmt.Errorf("storage: duplicate column %q in table %q", c.Name, meta.Name)
		}
		seen[c.Name] = true
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.tables[meta.Name]; ok {
		return nil, fmt.Errorf("storage: table %q already exists", meta.Name)
	}
	t := NewMemoryTable(meta)
	s.tables[meta.Name] = t
	s.schemaVersion++
	return t, nil
}

// DropTable removes a table and its column files.
func (s *Store) DropTable(name string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	t, ok := s.tables[name]
	if !ok {
		return fmt.Errorf("%w: %q", ErrNoSuchTable, name)
	}
	delete(s.tables, name)
	s.schemaVersion++
	for i := range t.cols {
		t.cols[i].Release()
		if s.dir != "" {
			os.Remove(s.columnPath(name, t.Meta.Cols[i].Name))
		}
	}
	return nil
}

// Get looks up a table by name.
func (s *Store) Get(name string) (*Table, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	t, ok := s.tables[name]
	return t, ok
}

// TableNames returns the sorted table names.
func (s *Store) TableNames() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.tableNamesLocked()
}

func (s *Store) tableNamesLocked() []string {
	names := make([]string, 0, len(s.tables))
	for n := range s.tables {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// DeltaStats snapshots every table's delta-store gauges, sorted by table
// name (Database.DeltaStats and Server.Stats surface these).
func (s *Store) DeltaStats() []delta.TableStats {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]delta.TableStats, 0, len(s.tables))
	for _, name := range s.tableNamesLocked() {
		out = append(out, s.tables[name].DeltaStats())
	}
	return out
}

// Snapshot captures the current version of every table — the read view of a
// new transaction.
func (s *Store) Snapshot() map[string]*TableVersion {
	s.mu.RLock()
	defer s.mu.RUnlock()
	snap := make(map[string]*TableVersion, len(s.tables))
	for name, t := range s.tables {
		snap[name] = t.Version()
	}
	return snap
}

// Close releases all column mappings. For persistent stores the caller is
// expected to Checkpoint first; in-memory stores simply discard their data
// (the paper's in-memory shutdown semantics).
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	var first error
	for _, t := range s.tables {
		for _, c := range t.cols {
			if err := c.Release(); err != nil && first == nil {
				first = err
			}
		}
	}
	s.tables = map[string]*Table{}
	return first
}
