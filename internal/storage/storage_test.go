package storage

import (
	"math/rand"
	"testing"

	"monetlite/internal/delta"
	"monetlite/internal/mtypes"
	"monetlite/internal/vec"
)

func testMeta() TableMeta {
	return TableMeta{
		Name: "t",
		Cols: []ColDef{
			{Name: "a", Typ: mtypes.Int},
			{Name: "b", Typ: mtypes.Varchar},
			{Name: "c", Typ: mtypes.Decimal(15, 2)},
		},
	}
}

func testBatch(n, base int) []*vec.Vector {
	a := vec.New(mtypes.Int, n)
	b := vec.New(mtypes.Varchar, n)
	c := vec.New(mtypes.Decimal(15, 2), n)
	for i := 0; i < n; i++ {
		a.I32[i] = int32(base + i)
		b.Str[i] = []string{"red", "green", "blue"}[(base+i)%3]
		c.I64[i] = int64((base + i) * 100)
	}
	return []*vec.Vector{a, b, c}
}

func TestCreateAppendScan(t *testing.T) {
	s := NewMemory()
	tbl, err := s.CreateTable(testMeta())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tbl.Append(testBatch(10, 0), s.BumpVersion()); err != nil {
		t.Fatal(err)
	}
	tv := tbl.Version()
	if tv.NRows != 10 || tv.LiveRows() != 10 {
		t.Fatalf("rows = %d/%d", tv.NRows, tv.LiveRows())
	}
	col, err := tv.Col(0)
	if err != nil {
		t.Fatal(err)
	}
	if col.Len() != 10 || col.I32[7] != 7 {
		t.Fatalf("scan: %v", col.I32)
	}
	sv, _ := tv.Col(1)
	if sv.Str[4] != "green" {
		t.Fatalf("varchar scan: %v", sv.Str[:5])
	}
}

func TestCreateTableValidation(t *testing.T) {
	s := NewMemory()
	if _, err := s.CreateTable(TableMeta{Name: "x"}); err == nil {
		t.Fatal("empty table should fail")
	}
	if _, err := s.CreateTable(TableMeta{Name: "x", Cols: []ColDef{{Name: "a", Typ: mtypes.Int}, {Name: "a", Typ: mtypes.Int}}}); err == nil {
		t.Fatal("duplicate column should fail")
	}
	if _, err := s.CreateTable(testMeta()); err != nil {
		t.Fatal(err)
	}
	if _, err := s.CreateTable(testMeta()); err == nil {
		t.Fatal("duplicate table should fail")
	}
}

func TestAppendValidation(t *testing.T) {
	s := NewMemory()
	tbl, _ := s.CreateTable(testMeta())
	batch := testBatch(3, 0)
	if _, err := tbl.Append(batch[:2], 1); err == nil {
		t.Fatal("wrong column count should fail")
	}
	ragged := testBatch(3, 0)
	ragged[1] = vec.New(mtypes.Varchar, 2)
	if _, err := tbl.Append(ragged, 1); err == nil {
		t.Fatal("ragged batch should fail")
	}
}

// Snapshot isolation: a snapshot taken before an append must not see the new
// rows, even though the underlying arrays are shared.
func TestSnapshotIsolationOnAppend(t *testing.T) {
	s := NewMemory()
	tbl, _ := s.CreateTable(testMeta())
	tbl.Append(testBatch(5, 0), s.BumpVersion())
	snap := tbl.Version()
	tbl.Append(testBatch(5, 100), s.BumpVersion())

	col, _ := snap.Col(0)
	if col.Len() != 5 {
		t.Fatalf("old snapshot sees %d rows", col.Len())
	}
	for i := 0; i < 5; i++ {
		if col.I32[i] != int32(i) {
			t.Fatalf("old snapshot content changed: %v", col.I32)
		}
	}
	cur, _ := tbl.Version().Col(0)
	if cur.Len() != 10 || cur.I32[9] != 104 {
		t.Fatalf("new version wrong: %v", cur.I32)
	}
}

func TestDeleteBitmapAndLiveCands(t *testing.T) {
	s := NewMemory()
	tbl, _ := s.CreateTable(testMeta())
	tbl.Append(testBatch(6, 0), s.BumpVersion())
	before := tbl.Version()
	if _, n, err := tbl.Delete([]int32{1, 3, 3}, s.BumpVersion()); err != nil || n != 2 {
		t.Fatalf("delete: n=%d err=%v", n, err)
	}
	after := tbl.Version()
	if after.LiveRows() != 4 {
		t.Fatalf("live = %d", after.LiveRows())
	}
	cands := after.LiveCands()
	want := []int32{0, 2, 4, 5}
	if len(cands) != 4 {
		t.Fatalf("cands: %v", cands)
	}
	for i := range want {
		if cands[i] != want[i] {
			t.Fatalf("cands: %v", cands)
		}
	}
	// Older snapshot still sees all rows (copy-on-write bitmap).
	if before.LiveCands() != nil || before.LiveRows() != 6 {
		t.Fatal("delete leaked into old snapshot")
	}
	// Out-of-range delete fails.
	if _, _, err := tbl.Delete([]int32{99}, 5); err == nil {
		t.Fatal("out of range delete should fail")
	}
}

func TestPersistenceRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	tbl, _ := s.CreateTable(testMeta())
	tbl.Append(testBatch(100, 0), s.BumpVersion())
	tbl.Delete([]int32{7}, s.BumpVersion())
	if err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	tbl2, ok := s2.Get("t")
	if !ok {
		t.Fatal("table lost")
	}
	tv := tbl2.Version()
	if tv.NRows != 100 || tv.LiveRows() != 99 {
		t.Fatalf("rows = %d live %d", tv.NRows, tv.LiveRows())
	}
	a, err := tv.Col(0)
	if err != nil {
		t.Fatal(err)
	}
	if a.I32[42] != 42 {
		t.Fatalf("int column: %d", a.I32[42])
	}
	b, _ := tv.Col(1)
	if b.Str[4] != "green" || b.Str[5] != "blue" {
		t.Fatalf("varchar column: %v", b.Str[:6])
	}
	c, _ := tv.Col(2)
	if c.I64[10] != 1000 || c.Typ.Scale != 2 {
		t.Fatalf("decimal column: %d %s", c.I64[10], c.Typ)
	}
}

func TestAppendAfterReload(t *testing.T) {
	dir := t.TempDir()
	s, _ := Open(dir)
	tbl, _ := s.CreateTable(testMeta())
	tbl.Append(testBatch(10, 0), s.BumpVersion())
	s.Checkpoint()
	s.Close()

	s2, _ := Open(dir)
	defer s2.Close()
	tbl2, _ := s2.Get("t")
	// Appending to an mmap-backed column must copy, not write through.
	if _, err := tbl2.Append(testBatch(5, 50), s2.BumpVersion()); err != nil {
		t.Fatal(err)
	}
	tv := tbl2.Version()
	col, _ := tv.Col(0)
	if col.Len() != 15 || col.I32[12] != 52 || col.I32[3] != 3 {
		t.Fatalf("append after reload: %v", col.I32)
	}
	sv, _ := tv.Col(1)
	if sv.Str[11] != []string{"red", "green", "blue"}[51%3] {
		t.Fatalf("varchar append after reload: %q", sv.Str[11])
	}
	// Checkpoint again and reload to confirm the combined state persists.
	s2.Checkpoint()
	s2.Close()
	s3, _ := Open(dir)
	defer s3.Close()
	tbl3, _ := s3.Get("t")
	col3, _ := tbl3.Version().Col(0)
	if col3.Len() != 15 || col3.I32[14] != 54 {
		t.Fatalf("second round trip: %v", col3.I32)
	}
}

func TestDropTable(t *testing.T) {
	dir := t.TempDir()
	s, _ := Open(dir)
	tbl, _ := s.CreateTable(testMeta())
	tbl.Append(testBatch(3, 0), s.BumpVersion())
	s.Checkpoint()
	if err := s.DropTable("t"); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Get("t"); ok {
		t.Fatal("table still visible")
	}
	if err := s.DropTable("t"); err == nil {
		t.Fatal("double drop should fail")
	}
	s.Checkpoint()
	s.Close()
	s2, _ := Open(dir)
	defer s2.Close()
	if _, ok := s2.Get("t"); ok {
		t.Fatal("dropped table came back after reload")
	}
}

func TestLazyLoading(t *testing.T) {
	dir := t.TempDir()
	s, _ := Open(dir)
	tbl, _ := s.CreateTable(testMeta())
	tbl.Append(testBatch(10, 0), s.BumpVersion())
	s.Checkpoint()
	s.Close()

	s2, _ := Open(dir)
	defer s2.Close()
	tbl2, _ := s2.Get("t")
	if tbl2.cols[0].Loaded() || tbl2.cols[1].Loaded() {
		t.Fatal("columns should load lazily")
	}
	tbl2.Version().Col(0)
	if !tbl2.cols[0].Loaded() {
		t.Fatal("col 0 should be loaded after access")
	}
	if tbl2.cols[1].Loaded() {
		t.Fatal("col 1 should stay unloaded")
	}
}

func TestIndexLifecycle(t *testing.T) {
	s := NewMemory()
	tbl, _ := s.CreateTable(testMeta())
	tbl.Append(testBatch(500, 0), s.BumpVersion())
	tv := tbl.Version()

	im := tbl.ImprintsFor(tv, 0)
	if im == nil {
		t.Fatal("imprints should build")
	}
	if tbl.ImprintsFor(tv, 0) != im {
		t.Fatal("imprints should be cached")
	}
	h := tbl.HashFor(tv, 1)
	if h == nil || h.Rows() != 500 {
		t.Fatal("hash index should build")
	}
	if err := tbl.CreateOrderIndex(0); err != nil {
		t.Fatal(err)
	}
	if !tbl.HasOrderIndex(0) || tbl.OrderFor(tv, 0) == nil {
		t.Fatal("order index should exist")
	}

	// Append: the new rows land in the append-delta. Imprints and hash keep
	// covering the 500-row base — for the old snapshot AND the new version
	// (the executor raw-scans the uncovered tail) — and the background merge
	// folds them forward. Order indexes die but rebuild on demand because
	// orderWanted persists.
	tbl.Append(testBatch(100, 500), s.BumpVersion())
	tv2 := tbl.Version()
	if tv2.BaseRows != 0 || tv2.DeltaRows() != 600 {
		// baseRows only advances at merge; this table never merged.
		t.Fatalf("append-delta bookkeeping: base %d delta %d", tv2.BaseRows, tv2.DeltaRows())
	}
	if got := tbl.ImprintsFor(tv, 0); got != im {
		t.Fatal("old snapshot should keep being served the base-covering imprints")
	}
	h2 := tbl.HashFor(tv2, 1)
	if h2 != h || h2.Rows() != 500 {
		t.Fatalf("append must not touch the hash index (rows %d)", h2.Rows())
	}
	if oi := tbl.OrderFor(tv2, 0); oi == nil || oi.Rows() != 600 {
		t.Fatal("order index should rebuild for new version")
	}

	// Merge folds the delta: imprints and hash extend incrementally.
	if rep, ok := tbl.MergeDelta(delta.NoPins); !ok || rep.ImprintsExtended != 1 || rep.HashExtended != 1 {
		t.Fatalf("merge should extend imprints and hash: %+v ok=%v", rep, ok)
	}
	tv2 = tbl.Version()
	if tv2.BaseRows != 600 {
		t.Fatalf("merge should advance the base to 600, got %d", tv2.BaseRows)
	}
	if im2 := tbl.ImprintsFor(tv2, 0); im2 == nil || im2.Len() != 600 {
		t.Fatal("imprints should cover the merged base")
	}
	if h3 := tbl.HashFor(tv2, 1); h3 == nil || h3.Rows() != 600 {
		t.Fatal("hash should cover the merged base")
	}

	// Delete: imprints and hash survive (deleted rows are excluded by the
	// executor's candidate lists); order indexes require delete-free
	// snapshots and die.
	tbl.Delete([]int32{0}, s.BumpVersion())
	tv3 := tbl.Version()
	if tbl.ImprintsFor(tv3, 0) == nil || tbl.HashFor(tv3, 1) == nil {
		t.Fatal("imprints/hash must survive deletes")
	}
	if tbl.OrderFor(tv3, 0) != nil {
		t.Fatal("order index must not be served for snapshots with deletes")
	}
}

func TestImprintsMatchScanViaTable(t *testing.T) {
	s := NewMemory()
	tbl, _ := s.CreateTable(TableMeta{Name: "r", Cols: []ColDef{{Name: "x", Typ: mtypes.Int}}})
	rng := rand.New(rand.NewSource(99))
	v := vec.New(mtypes.Int, 3000)
	for i := range v.I32 {
		v.I32[i] = int32(rng.Intn(1000))
	}
	tbl.Append([]*vec.Vector{v}, s.BumpVersion())
	tv := tbl.Version()
	im := tbl.ImprintsFor(tv, 0)
	col, _ := tv.Col(0)
	lo, hi := mtypes.NewInt(mtypes.Int, 100), mtypes.NewInt(mtypes.Int, 200)
	got := im.SelectRange(col, lo, hi, true, true)
	want := vec.SelRange(col, lo, hi, true, true, nil)
	if len(got) != len(want) {
		t.Fatalf("imprints disagree with scan: %d vs %d", len(got), len(want))
	}
}

func TestBitmap(t *testing.T) {
	b := NewBitmap(100)
	if !b.Set(5) || b.Set(5) {
		t.Fatal("set twice")
	}
	b.Set(64)
	b.Set(99)
	if !b.Get(5) || !b.Get(64) || b.Get(6) {
		t.Fatal("get")
	}
	if b.Count() != 3 {
		t.Fatalf("count = %d", b.Count())
	}
	slots := b.Slots()
	if len(slots) != 3 || slots[0] != 5 || slots[1] != 64 || slots[2] != 99 {
		t.Fatalf("slots: %v", slots)
	}
	cl := b.Clone(100)
	cl.Set(7)
	if b.Get(7) {
		t.Fatal("clone aliases")
	}
	// Growing set.
	b2 := NewBitmap(1)
	b2.Set(200)
	if !b2.Get(200) {
		t.Fatal("grow on set")
	}
	var nilB *Bitmap
	if nilB.Count() != 0 || nilB.Get(3) || nilB.Slots() != nil || nilB.LiveCands(5) != nil {
		t.Fatal("nil bitmap helpers")
	}
}

func TestSnapshotMap(t *testing.T) {
	s := NewMemory()
	s.CreateTable(testMeta())
	snap := s.Snapshot()
	if len(snap) != 1 || snap["t"] == nil {
		t.Fatalf("snapshot: %v", snap)
	}
	names := s.TableNames()
	if len(names) != 1 || names[0] != "t" {
		t.Fatalf("names: %v", names)
	}
}

func TestStoreVersioning(t *testing.T) {
	s := NewMemory()
	v1 := s.BumpVersion()
	v2 := s.BumpVersion()
	if v2 != v1+1 || s.Version() != v2 {
		t.Fatal("versioning")
	}
	if !s.InMemory() || s.Dir() != "" {
		t.Fatal("memory store flags")
	}
}

// Imprints must survive appends: the index is extended with the new blocks
// (not rebuilt, not destroyed), old snapshots keep their unmutated copy, and
// pruned selections stay identical to naive scans across the append.
func TestImprintsMaintainedOnAppend(t *testing.T) {
	s := NewMemory()
	tbl, err := s.CreateTable(testMeta())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tbl.Append(testBatch(500, 0), s.BumpVersion()); err != nil {
		t.Fatal(err)
	}
	v1 := tbl.Version()
	im1 := tbl.ImprintsFor(v1, 0)
	if im1 == nil || im1.Len() != 500 {
		t.Fatal("imprints not built on demand")
	}

	if _, err := tbl.Append(testBatch(300, 500), s.BumpVersion()); err != nil {
		t.Fatal(err)
	}
	// The append itself leaves the imprints alone: both the old snapshot and
	// the new version are served the 500-row base coverage (the executor
	// raw-scans the uncovered append-delta tail).
	v2 := tbl.Version()
	if got := tbl.ImprintsFor(v2, 0); got != im1 || got.Len() != 500 {
		t.Fatalf("append must not touch imprints (got %v)", got)
	}
	// The background merge extends them copy-on-write over the delta rows.
	if rep, ok := tbl.MergeDelta(delta.NoPins); !ok || rep.ImprintsExtended != 1 {
		t.Fatalf("merge should extend imprints: %+v ok=%v", rep, ok)
	}
	v2 = tbl.Version()
	im2 := tbl.ImprintsFor(v2, 0)
	if im2 == nil || im2.Len() != 800 {
		t.Fatalf("imprints not extended by merge (len %v)", im2)
	}
	if im2 == im1 {
		t.Fatal("merge must produce a fresh imprints object (readers may hold the old one)")
	}
	if im1.Len() != 500 {
		t.Fatal("merge mutated the old snapshot's imprints")
	}
	col, _ := v2.Col(0)
	lo, hi := mtypes.NewInt(mtypes.Int, 100), mtypes.NewInt(mtypes.Int, 650)
	got := im2.SelectRange(col, lo, hi, true, true)
	want := vec.SelRange(col, lo, hi, true, true, nil)
	if len(got) != len(want) {
		t.Fatalf("pruned selection %d rows, naive %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("row %d: %d vs %d", i, got[i], want[i])
		}
	}

	// Deletes keep imprints alive: the bitmap is consumed by the executor's
	// candidate lists, and imprint blocks that pass the mask are verified by
	// value, so deleted rows can never leak through pruning.
	if _, _, err := tbl.Delete([]int32{3}, s.BumpVersion()); err != nil {
		t.Fatal(err)
	}
	if tbl.ImprintsFor(tbl.Version(), 0) != im2 {
		t.Fatal("imprints should survive deletes")
	}
}
