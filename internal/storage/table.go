package storage

import (
	"fmt"
	"sync"
	"sync/atomic"

	"monetlite/internal/delta"
	"monetlite/internal/index"
	"monetlite/internal/mtypes"
	"monetlite/internal/vec"
)

// ColDef describes one column of a table.
type ColDef struct {
	Name string
	Typ  mtypes.Type
}

// TableMeta is a table's schema.
type TableMeta struct {
	Name string
	Cols []ColDef
}

// ColIndex returns the position of the named column, or -1.
func (m *TableMeta) ColIndex(name string) int {
	for i, c := range m.Cols {
		if c.Name == name {
			return i
		}
	}
	return -1
}

// TableVersion is an immutable snapshot of a table's visible state: a row
// count and a deletion bitmap over append-only column arrays, plus the
// boundary of the merged base. Reading a version never blocks writers and
// vice versa.
//
// Delta-store layout (paper §3.1): rows [0, BaseRows) are the immutable
// base — the prefix the secondary indexes and column encodings were last
// folded over. Rows [BaseRows, NRows) are the append-delta: recent commits'
// raw vectors, visible to scans as an extra trailing window that indexes do
// not cover. Dels is the delete-delta: a copy-on-write bitmap scans consume
// directly through candidate lists, never a materialized rewrite. The
// background merger (merge.go) folds the append-delta into the base by
// extending indexes/encodings incrementally and republishing with
// BaseRows = NRows.
type TableVersion struct {
	Version  uint64 // global commit version that produced this snapshot
	NRows    int    // visible physical rows (including deleted ones)
	BaseRows int    // rows covered by the merged base; the tail is the delta
	Dels     *Bitmap
	table    *Table
}

// Meta returns the table schema.
func (tv *TableVersion) Meta() *TableMeta { return &tv.table.Meta }

// Table returns the owning table (for index access).
func (tv *TableVersion) Table() *Table { return tv.table }

// Col loads column i and returns it truncated to this version's row count.
// The slice header is copied under the column lock, so concurrent delta
// appends (which grow the shared array past NRows) never race with readers.
func (tv *TableVersion) Col(i int) (*vec.Vector, error) {
	return tv.table.cols[i].LoadSlice(tv.NRows)
}

// DeltaRows returns the size of this snapshot's append-delta tail.
func (tv *TableVersion) DeltaRows() int { return tv.NRows - tv.BaseRows }

// LiveCands returns the candidate list of non-deleted rows (nil = all).
func (tv *TableVersion) LiveCands() []int32 { return tv.Dels.LiveCands(tv.NRows) }

// LiveRows returns the number of visible rows.
func (tv *TableVersion) LiveRows() int { return tv.NRows - tv.Dels.Count() }

// colIndexes tracks the secondary indexes of one column together with the
// metadata needed to decide their validity for a given snapshot.
type colIndexes struct {
	imprints     *index.Imprints
	imprintsRows int
	hash         *index.HashIndex
	order        *index.OrderIndex
	orderRows    int
	orderWanted  bool // CREATE ORDER INDEX was issued; rebuild lazily
	stats        *ColStats
	statsRows    int
}

// Table is a mutable table: current version pointer, physical columns and
// index bookkeeping. Mutations run under the transaction layer's commit lock
// plus t.mu; readers use the atomic version pointer.
type Table struct {
	Meta TableMeta

	mu   sync.Mutex
	cols []*Column
	cur  atomic.Pointer[TableVersion]
	idx  []colIndexes

	// baseRows is the merged-base boundary published as TableVersion
	// .BaseRows: the prefix the indexes and encodings were last folded over
	// (merge.go). Monotone, under t.mu.
	baseRows int

	// delta carries the table's delta-store counters (lock-free gauges).
	delta delta.State

	// Statistics staleness tracking (see StatsEpoch): epoch counter plus the
	// row count at the last epoch bump.
	statsEpoch     uint64
	statsRowsStamp int
}

func newTable(meta TableMeta) *Table {
	t := &Table{Meta: meta, cols: make([]*Column, len(meta.Cols)), idx: make([]colIndexes, len(meta.Cols))}
	return t
}

// NewMemoryTable creates an empty in-memory table (used by tests and the
// in-memory database mode).
func NewMemoryTable(meta TableMeta) *Table {
	t := newTable(meta)
	for i, cd := range meta.Cols {
		t.cols[i] = NewColumn(cd.Typ)
	}
	t.publish(&TableVersion{Version: 0, NRows: 0, table: t})
	return t
}

func (t *Table) publish(tv *TableVersion) { t.cur.Store(tv) }

// Version returns the current snapshot.
func (t *Table) Version() *TableVersion { return t.cur.Load() }

// DeltaState returns the table's delta counters.
func (t *Table) DeltaState() *delta.State { return &t.delta }

// DeltaStats snapshots the table's delta gauges.
func (t *Table) DeltaStats() delta.TableStats {
	tv := t.Version()
	st := delta.TableStats{
		Table:          t.Meta.Name,
		Rows:           tv.NRows,
		BaseRows:       tv.BaseRows,
		DeltaRows:      tv.NRows - tv.BaseRows,
		DeletedRows:    tv.Dels.Count(),
		ReadsWithDelta: t.delta.ReadsWithDelta.Load(),
		Merges:         t.delta.Merges.Load(),
		Deferred:       t.delta.Deferred.Load(),
		MergeNanos:     t.delta.MergeNanos.Load(),
		LastMergeNanos: t.delta.LastMergeNanos.Load(),
	}
	if tv.NRows > 0 {
		st.DeleteDensity = float64(st.DeletedRows) / float64(tv.NRows)
	}
	return st
}

// Append adds a batch of rows (one vector per column, equal lengths) and
// publishes a new version stamped with commitVersion. The new rows land in
// the append-delta: column arrays grow in O(batch) — encodings and indexes
// keep covering the base prefix and are folded forward later by the
// background merger, not here. Order indexes are dropped (they do not
// survive appends); the orderWanted flag keeps lazy rebuilds available.
func (t *Table) Append(cols []*vec.Vector, commitVersion uint64) (*TableVersion, error) {
	if len(cols) != len(t.cols) {
		return nil, fmt.Errorf("storage: append to %s: %d columns, want %d", t.Meta.Name, len(cols), len(t.cols))
	}
	n := cols[0].Len()
	for i, v := range cols {
		if v.Len() != n {
			return nil, fmt.Errorf("storage: append to %s: ragged batch (col %d has %d rows, want %d)", t.Meta.Name, i, v.Len(), n)
		}
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	old := t.Version()
	for i, v := range cols {
		newLen, err := t.cols[i].Append(v)
		if err != nil {
			return nil, err
		}
		if newLen != old.NRows+n {
			return nil, fmt.Errorf("storage: append to %s: column %d length %d, want %d", t.Meta.Name, i, newLen, old.NRows+n)
		}
	}
	for i := range t.idx {
		t.idx[i].order = nil
	}
	t.noteRowsChanged(old.NRows+n, false)
	tv := &TableVersion{Version: commitVersion, NRows: old.NRows + n, BaseRows: t.baseRows, Dels: old.Dels, table: t}
	t.publish(tv)
	return tv, nil
}

// RecoverTruncate trims every column back to the cataloged row count. WAL
// replay calls it once per table before re-applying appends, so column files
// written ahead of the catalog by a crashed checkpoint don't make replayed
// appends land twice (or fail the length check). Indexes and stats are
// dropped wholesale: truncation followed by replayed re-appends would leave
// them describing rows that no longer exist.
func (t *Table) RecoverTruncate() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	n := t.Version().NRows
	for _, c := range t.cols {
		if err := c.TruncateTo(n); err != nil {
			return err
		}
	}
	for i := range t.idx {
		t.idx[i] = colIndexes{orderWanted: t.idx[i].orderWanted}
	}
	if t.baseRows > n {
		t.baseRows = n
	}
	return nil
}

// Delete marks rows deleted and publishes a new version. The delete-delta
// stays a bitmap (copy-on-write, so older snapshots keep their own deletion
// state); imprints and hash indexes survive — deleted rows are excluded by
// the executor's candidate lists, never served by the index structures
// themselves. Order indexes don't survive (their validity gate requires a
// delete-free snapshot).
func (t *Table) Delete(rowids []int32, commitVersion uint64) (*TableVersion, int, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	old := t.Version()
	dels := old.Dels.Clone(old.NRows)
	n := 0
	for _, r := range rowids {
		if r < 0 || int(r) >= old.NRows {
			return nil, 0, fmt.Errorf("storage: delete from %s: row %d out of range", t.Meta.Name, r)
		}
		if dels.Set(r) {
			n++
		}
	}
	for i := range t.idx {
		t.idx[i].order = nil
		t.idx[i].stats = nil
	}
	// Any delete is a material stats change: min/max and ndv can shift in
	// ways appends cannot, so the epoch always bumps.
	t.noteRowsChanged(old.NRows, true)
	tv := &TableVersion{Version: commitVersion, NRows: old.NRows, BaseRows: t.baseRows, Dels: dels, table: t}
	t.publish(tv)
	return tv, n, nil
}

// ---------------------------------------------------------------------------
// Automatic index access (paper §3.1 "Automatic Indexing").
// ---------------------------------------------------------------------------

// ImprintsFor returns (building on demand) the imprints of column ci; nil
// when unavailable. Imprints covering any row prefix are safe for any
// snapshot: the executor windows its probes at Imprints.Len() and raw-scans
// the uncovered delta tail, block masks are conservative (masks built over
// extra rows only add bits, causing extra verification, never wrong skips),
// and deleted rows are excluded by candidate-list intersection. Builds use
// the snapshot's row prefix, which is immutable in every later version
// (column arrays are append-only; deletes live in the bitmap), so a build
// races safely with concurrent commits and background merges.
func (t *Table) ImprintsFor(tv *TableVersion, ci int) *index.Imprints {
	t.mu.Lock()
	defer t.mu.Unlock()
	ix := &t.idx[ci]
	if ix.imprints != nil {
		return ix.imprints
	}
	data, err := t.cols[ci].Load()
	if err != nil {
		return nil
	}
	ix.imprints = index.BuildImprints(data.Slice(0, tv.NRows))
	ix.imprintsRows = tv.NRows
	return ix.imprints
}

// HashFor returns (building on demand) the hash index of column ci for
// snapshot tv; nil when the index covers rows the snapshot cannot see. An
// index covering fewer rows than the snapshot is served — the executor
// raw-scans the uncovered delta tail — and deleted rows are excluded by
// candidate-list intersection.
func (t *Table) HashFor(tv *TableVersion, ci int) *index.HashIndex {
	t.mu.Lock()
	defer t.mu.Unlock()
	ix := &t.idx[ci]
	if ix.hash != nil {
		if ix.hash.Rows() <= tv.NRows {
			return ix.hash
		}
		// Cached index covers rows this older snapshot cannot see; don't
		// clobber it with a smaller rebuild.
		return nil
	}
	data, err := t.cols[ci].Load()
	if err != nil {
		return nil
	}
	ix.hash = index.BuildHashIndex(data.Slice(0, tv.NRows))
	return ix.hash
}

// OrderFor returns the order index of column ci if one was created with
// CREATE ORDER INDEX and is still valid for tv. Order indexes are a sorted
// permutation of all rows, so unlike imprints/hash they require exact
// coverage: current version, no deletes.
func (t *Table) OrderFor(tv *TableVersion, ci int) *index.OrderIndex {
	if tv != t.Version() || tv.Dels.Count() > 0 {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	ix := &t.idx[ci]
	if ix.order != nil && ix.orderRows == tv.NRows {
		return ix.order
	}
	if !ix.orderWanted {
		return nil
	}
	data, err := t.cols[ci].Load()
	if err != nil {
		return nil
	}
	ix.order = index.BuildOrderIndex(data.Slice(0, tv.NRows))
	ix.orderRows = tv.NRows
	return ix.order
}

// CreateOrderIndex marks column ci as order-indexed and builds the index
// eagerly (CREATE ORDER INDEX statement).
func (t *Table) CreateOrderIndex(ci int) error {
	tv := t.Version()
	t.mu.Lock()
	defer t.mu.Unlock()
	data, err := t.cols[ci].Load()
	if err != nil {
		return err
	}
	t.idx[ci].orderWanted = true
	t.idx[ci].order = index.BuildOrderIndex(data.Slice(0, tv.NRows))
	t.idx[ci].orderRows = tv.NRows
	return nil
}

// HasOrderIndex reports whether CREATE ORDER INDEX was issued for column ci.
func (t *Table) HasOrderIndex(ci int) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.idx[ci].orderWanted
}
