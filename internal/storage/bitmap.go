package storage

// Bitmap is a fixed-capacity bitset over row ids used to mark deleted rows.
// Versions share bitmaps immutably: mutation goes through Clone (copy-on-
// write), so older table snapshots keep seeing their own deletion state.
type Bitmap struct {
	words []uint64
	count int
}

// NewBitmap creates an empty bitmap able to hold n bits.
func NewBitmap(n int) *Bitmap {
	return &Bitmap{words: make([]uint64, (n+63)/64)}
}

// Clone deep-copies the bitmap, growing capacity to n bits if needed.
func (b *Bitmap) Clone(n int) *Bitmap {
	nw := (n + 63) / 64
	if b != nil && len(b.words) > nw {
		nw = len(b.words)
	}
	out := &Bitmap{words: make([]uint64, nw)}
	if b != nil {
		copy(out.words, b.words)
		out.count = b.count
	}
	return out
}

// Set marks bit i; reports whether it was newly set.
func (b *Bitmap) Set(i int32) bool {
	w, m := i/64, uint64(1)<<(uint(i)%64)
	if int(w) >= len(b.words) {
		grown := make([]uint64, w+1)
		copy(grown, b.words)
		b.words = grown
	}
	if b.words[w]&m != 0 {
		return false
	}
	b.words[w] |= m
	b.count++
	return true
}

// Get reports whether bit i is set.
func (b *Bitmap) Get(i int32) bool {
	if b == nil {
		return false
	}
	w := i / 64
	if int(w) >= len(b.words) {
		return false
	}
	return b.words[w]&(1<<(uint(i)%64)) != 0
}

// Count returns the number of set bits.
func (b *Bitmap) Count() int {
	if b == nil {
		return 0
	}
	return b.count
}

// Slots returns all set bit positions in ascending order.
func (b *Bitmap) Slots() []int32 {
	if b == nil {
		return nil
	}
	out := make([]int32, 0, b.count)
	for w, word := range b.words {
		for word != 0 {
			bit := word & -word
			pos := int32(w*64) + int32(trailingZeros(word))
			out = append(out, pos)
			word ^= bit
		}
	}
	return out
}

func trailingZeros(x uint64) int {
	n := 0
	for x&1 == 0 {
		x >>= 1
		n++
	}
	return n
}

// LiveCands materializes the candidate list of rows in [0,n) that are NOT
// deleted; returns nil when nothing is deleted (nil = all rows).
func (b *Bitmap) LiveCands(n int) []int32 {
	if b.Count() == 0 {
		return nil
	}
	out := make([]int32, 0, n-b.Count())
	for i := int32(0); int(i) < n; i++ {
		if !b.Get(i) {
			out = append(out, i)
		}
	}
	return out
}
