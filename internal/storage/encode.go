package storage

import (
	"monetlite/internal/mtypes"
	"monetlite/internal/vec"
)

// Compressed physical columns (ROADMAP item 3). A Column may carry a
// vec.Encoded form alongside (or instead of) its raw vector: dictionary
// codes for low-NDV varchars, frame-of-reference bit-packing for the
// integer family, run-length pairs for clustered data. The encoding is the
// *storage representation*, not a secondary index — it is chosen here (at
// explicit EncodeColumns calls and at checkpoint time, driven by ColStats),
// persisted in the MLC2 column format (persist.go), loaded lazily, and
// handed to the executor through Table.EncodedFor so filters, group-by and
// sort can run directly on codes. Any mutation (append, truncate) decays
// the column back to its raw form; the decoded vector doubles as a cache so
// operators that need raw values never decode twice.

// checkpointEncodeMinRows is the row floor below which Checkpoint leaves
// columns raw: tiny tables gain nothing and the fixed per-file overhead of
// the encoded format would dominate.
const checkpointEncodeMinRows = 1024

// EncodedForm returns the column's compressed representation, or nil when
// the column is raw. The result is immutable.
func (c *Column) EncodedForm() *vec.Encoded {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.enc
}

// encode compresses the column if its resident data covers exactly n rows
// and an encoding pays for itself (vec.EncodeColumn's size hysteresis).
// ndvHint forwards the stats estimate to skip hopeless dictionary attempts.
func (c *Column) encode(n int, ndvHint int) (vec.Encoding, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.enc != nil && c.enc.N >= n {
		return c.enc.Enc, nil
	}
	data, err := c.loadDataLocked()
	if err != nil {
		return vec.EncNone, err
	}
	if data.Len() < n {
		return vec.EncNone, nil // snapshot ahead of resident data: stay raw
	}
	e := vec.EncodeColumn(data.Slice(0, n), ndvHint)
	if e == nil {
		return vec.EncNone, nil
	}
	c.enc = e
	return e.Enc, nil
}

// EncodedFor returns the compressed form of column ci, nil when the column
// is raw. The encoding is the physical data itself: append-only arrays make
// any row-prefix window valid for any snapshot, and deleted rows are
// excluded by the executor's candidate lists exactly as they are on the raw
// path. The encoding may cover fewer rows than the snapshot (e.N < tv.NRows)
// when an append-delta is pending — the executor windows encoded kernels at
// e.N and raw-scans the tail — or more rows than an older snapshot sees,
// which is harmless for the same windowing reason.
func (t *Table) EncodedFor(tv *TableVersion, ci int) *vec.Encoded {
	return t.cols[ci].EncodedForm()
}

// EncodeColumns compresses every column of the current snapshot (stats-
// driven: the cached ColStats NDV estimate pre-screens dictionary
// candidates). It returns how many columns now hold an encoded form.
func (t *Table) EncodeColumns() (int, error) {
	tv := t.Version()
	encoded := 0
	for ci := range t.cols {
		hint := 0
		if t.Meta.Cols[ci].Typ.Kind == mtypes.KVarchar {
			if st := t.StatsFor(tv, ci); st != nil {
				hint = int(st.NDV)
			}
		}
		enc, err := t.cols[ci].encode(tv.NRows, hint)
		if err != nil {
			return encoded, err
		}
		if enc != vec.EncNone {
			encoded++
		}
	}
	return encoded, nil
}

// EncodeAll compresses the columns of every table in the store. Returns the
// total number of encoded columns.
func (s *Store) EncodeAll() (int, error) {
	s.mu.RLock()
	tables := make([]*Table, 0, len(s.tables))
	for _, name := range s.tableNamesLocked() {
		tables = append(tables, s.tables[name])
	}
	s.mu.RUnlock()
	total := 0
	for _, t := range tables {
		n, err := t.EncodeColumns()
		total += n
		if err != nil {
			return total, err
		}
	}
	return total, nil
}

// ColFootprint reports one column's storage footprint for the bytes/row
// measurements (README table, cmd/benchgate's EncodedBytesPerRow entry).
type ColFootprint struct {
	Name     string
	Enc      vec.Encoding
	Bytes    int64 // resident representation: encoded size when encoded
	RawBytes int64 // what the same rows cost in the raw (MLC1) layout
}

// Footprint measures every column of the current snapshot.
func (t *Table) Footprint() ([]ColFootprint, error) {
	tv := t.Version()
	out := make([]ColFootprint, len(t.cols))
	for ci, c := range t.cols {
		fp := ColFootprint{Name: t.Meta.Cols[ci].Name}
		c.mu.Lock()
		if c.enc != nil {
			fp.Enc = c.enc.Enc
			fp.Bytes = c.enc.SizeBytes()
			fp.RawBytes = c.enc.RawSizeBytes()
			c.mu.Unlock()
			out[ci] = fp
			continue
		}
		data, err := c.loadDataLocked()
		if err != nil {
			c.mu.Unlock()
			return nil, err
		}
		data = data.Slice(0, min(data.Len(), tv.NRows))
		if c.Typ.Kind == mtypes.KVarchar {
			fp.RawBytes = 4 * int64(data.Len())
			if c.heap != nil {
				fp.RawBytes += int64(len(c.heap.Bytes()))
			}
		} else {
			fp.RawBytes = vec.RawBytes(data)
		}
		fp.Bytes = fp.RawBytes
		c.mu.Unlock()
		out[ci] = fp
	}
	return out, nil
}
