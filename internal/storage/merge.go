package storage

import (
	"time"

	"monetlite/internal/index"
	"monetlite/internal/vec"
)

// MergeReport describes one completed delta fold (the storage.deltamerge
// trace line and the merge log are rendered from it).
type MergeReport struct {
	Table            string
	FromRows         int // base boundary before the fold
	ToRows           int // base boundary after (the folded snapshot's NRows)
	ImprintsExtended int // columns whose imprints grew via Imprints.Extend
	HashExtended     int // columns whose hash index grew via HashIndex.Extended
	Encoded          int // columns re-encoded to cover the folded rows
	Duration         time.Duration
}

// MergeDelta folds the table's append-delta into the base: secondary indexes
// are extended incrementally over the delta rows (never rebuilt from
// scratch), encodings that covered only the old base are re-run, and the
// current version is republished with BaseRows advanced to the folded
// boundary. Returns false with no work done when the delta is empty or when
// a reader pins an epoch older than the table's current version (pass
// delta.NoPins to force; folding is always logically safe — pinned snapshots
// keep their own immutable version structs and shared append-only arrays —
// the gate only keeps the merger from churning under long-running scans).
//
// The fold runs in two phases: phase 1 builds the extended index structures
// off the table lock (reading the column through LoadSlice, so concurrent
// appends can land mid-fold without racing), phase 2 installs them under
// t.mu. Structures built for tv.NRows rows stay valid if the table grew in
// between — coverage-based serving (ImprintsFor/HashFor/EncodedFor) windows
// the uncovered tail exactly as it does for any other delta.
func (t *Table) MergeDelta(minPinned uint64) (MergeReport, bool) {
	tv := t.Version()
	rep := MergeReport{Table: t.Meta.Name, FromRows: tv.BaseRows, ToRows: tv.NRows}
	if tv.NRows <= tv.BaseRows {
		return rep, false
	}
	if tv.Version > minPinned {
		t.delta.Deferred.Add(1)
		return rep, false
	}
	start := time.Now()

	type colFold struct {
		im       *index.Imprints
		h        *index.HashIndex
		enc      *vec.Encoded
		reencode bool // a re-encode ran; install enc even when nil (decay)
	}
	folds := make([]colFold, len(t.cols))
	for ci := range t.cols {
		t.mu.Lock()
		im, imRows, h := t.idx[ci].imprints, t.idx[ci].imprintsRows, t.idx[ci].hash
		t.mu.Unlock()
		e := t.cols[ci].EncodedForm()
		if im == nil && h == nil && e == nil {
			continue // nothing covers this column; lazy builds handle it later
		}
		data, err := t.cols[ci].LoadSlice(tv.NRows)
		if err != nil {
			return rep, false
		}
		if im != nil && imRows < tv.NRows {
			if ext := im.Extend(data, imRows); ext != nil {
				folds[ci].im = ext
				rep.ImprintsExtended++
			}
		}
		if h != nil && h.Rows() < tv.NRows {
			folds[ci].h = h.Extended(data, h.Rows())
			rep.HashExtended++
		}
		if e != nil && e.N < tv.NRows {
			// Re-encode over the folded rows; a nil result (encoding no longer
			// pays) decays the column to raw.
			folds[ci].enc = vec.EncodeColumn(data, 0)
			folds[ci].reencode = true
			rep.Encoded++
		}
	}

	t.mu.Lock()
	for ci, f := range folds {
		if f.im != nil {
			t.idx[ci].imprints = f.im
			t.idx[ci].imprintsRows = tv.NRows
		}
		if f.h != nil {
			t.idx[ci].hash = f.h
		}
		if f.reencode {
			t.cols[ci].refreshEncoded(f.enc)
		}
	}
	if tv.NRows > t.baseRows {
		t.baseRows = tv.NRows
	}
	// Republish the current version with the advanced base boundary. Commits
	// are excluded by t.mu, so cur cannot move underneath the swap; readers
	// holding the old pointer keep a version that merely understates the
	// indexed prefix, which coverage-based serving tolerates.
	cur := t.Version()
	t.publish(&TableVersion{Version: cur.Version, NRows: cur.NRows, BaseRows: t.baseRows, Dels: cur.Dels, table: t})
	t.mu.Unlock()

	rep.Duration = time.Since(start)
	t.delta.Merges.Add(1)
	t.delta.MergeNanos.Add(rep.Duration.Nanoseconds())
	t.delta.LastMergeNanos.Store(rep.Duration.Nanoseconds())
	return rep, true
}
