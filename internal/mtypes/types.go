// Package mtypes defines the SQL type system of monetlite: type descriptors,
// NULL sentinel values, and the scalar Value representation used by row-wise
// code paths (literals, the volcano engine, wire protocols).
//
// Following MonetDB's storage model, NULL is not tracked in a separate
// validity mask: it is a "special" value inside the domain of each type
// (e.g. math.MinInt32 for INTEGER, NaN for DOUBLE). Vectorized kernels treat
// the sentinel like any other value and filter it where SQL semantics demand.
package mtypes

import (
	"fmt"
	"math"
	"strings"
)

// Kind enumerates the physical type classes supported by the engine.
type Kind uint8

const (
	KUnknown  Kind = iota
	KBool          // stored as int8 (0/1, null = NullInt8)
	KTinyInt       // int8
	KSmallInt      // int16
	KInt           // int32
	KBigInt        // int64
	KDouble        // float64
	KDecimal       // int64 scaled by 10^Scale
	KDate          // int32 days since 1970-01-01
	KVarchar       // string
)

// Type is a full SQL type descriptor: a Kind plus decimal precision/scale and
// varchar width where applicable.
type Type struct {
	Kind  Kind
	Prec  int // decimal precision (total digits); 0 if n/a
	Scale int // decimal scale (digits after the point); 0 if n/a
	Width int // varchar declared width; 0 = unlimited
}

// Convenience constructors for the common types.
var (
	Bool     = Type{Kind: KBool}
	TinyInt  = Type{Kind: KTinyInt}
	SmallInt = Type{Kind: KSmallInt}
	Int      = Type{Kind: KInt}
	BigInt   = Type{Kind: KBigInt}
	Double   = Type{Kind: KDouble}
	Date     = Type{Kind: KDate}
	Varchar  = Type{Kind: KVarchar}
)

// Decimal returns a DECIMAL(p,s) type descriptor.
func Decimal(prec, scale int) Type { return Type{Kind: KDecimal, Prec: prec, Scale: scale} }

// VarcharN returns a VARCHAR(n) type descriptor.
func VarcharN(n int) Type { return Type{Kind: KVarchar, Width: n} }

// NULL sentinels, mirroring MonetDB's in-domain special values.
const (
	NullInt8  = int8(math.MinInt8)
	NullInt16 = int16(math.MinInt16)
	NullInt32 = int32(math.MinInt32)
	NullInt64 = int64(math.MinInt64)
)

// NullFloat64 returns the DOUBLE null sentinel (NaN).
func NullFloat64() float64 { return math.NaN() }

// IsNullF64 reports whether f is the DOUBLE null sentinel.
func IsNullF64(f float64) bool { return math.IsNaN(f) }

// String renders the type in SQL syntax.
func (t Type) String() string {
	switch t.Kind {
	case KBool:
		return "BOOLEAN"
	case KTinyInt:
		return "TINYINT"
	case KSmallInt:
		return "SMALLINT"
	case KInt:
		return "INTEGER"
	case KBigInt:
		return "BIGINT"
	case KDouble:
		return "DOUBLE"
	case KDecimal:
		return fmt.Sprintf("DECIMAL(%d,%d)", t.Prec, t.Scale)
	case KDate:
		return "DATE"
	case KVarchar:
		if t.Width > 0 {
			return fmt.Sprintf("VARCHAR(%d)", t.Width)
		}
		return "VARCHAR"
	default:
		return "UNKNOWN"
	}
}

// Fixed reports whether values of the type are fixed-width (everything except
// VARCHAR, which lives in a variable-sized heap).
func (t Type) Fixed() bool { return t.Kind != KVarchar }

// ByteWidth returns the width in bytes of one fixed-width value, or 0 for
// variable-width types.
func (t Type) ByteWidth() int {
	switch t.Kind {
	case KBool, KTinyInt:
		return 1
	case KSmallInt:
		return 2
	case KInt, KDate:
		return 4
	case KBigInt, KDecimal, KDouble:
		return 8
	default:
		return 0
	}
}

// IsNumeric reports whether the type participates in arithmetic.
func (t Type) IsNumeric() bool {
	switch t.Kind {
	case KTinyInt, KSmallInt, KInt, KBigInt, KDouble, KDecimal:
		return true
	}
	return false
}

// IsInteger reports whether the type is one of the integer kinds.
func (t Type) IsInteger() bool {
	switch t.Kind {
	case KTinyInt, KSmallInt, KInt, KBigInt:
		return true
	}
	return false
}

// ParseTypeName parses a SQL type name (without arguments) into a Kind.
// Returns KUnknown for unrecognized names.
func ParseTypeName(name string) Kind {
	switch strings.ToUpper(name) {
	case "BOOLEAN", "BOOL":
		return KBool
	case "TINYINT":
		return KTinyInt
	case "SMALLINT":
		return KSmallInt
	case "INTEGER", "INT":
		return KInt
	case "BIGINT":
		return KBigInt
	case "DOUBLE", "FLOAT", "REAL", "DOUBLE PRECISION":
		return KDouble
	case "DECIMAL", "NUMERIC", "DEC":
		return KDecimal
	case "DATE":
		return KDate
	case "VARCHAR", "TEXT", "CHAR", "STRING", "CLOB":
		return KVarchar
	}
	return KUnknown
}

// Pow10 holds powers of ten used for decimal rescaling (index = exponent).
var Pow10 = [19]int64{
	1, 10, 100, 1000, 10000, 100000, 1000000, 10000000, 100000000,
	1000000000, 10000000000, 100000000000, 1000000000000, 10000000000000,
	100000000000000, 1000000000000000, 10000000000000000, 100000000000000000,
	1000000000000000000,
}
