package mtypes

import (
	"fmt"
	"math"
	"strconv"
	"strings"
)

// Value is the scalar (row-wise) value representation. Vectorized kernels do
// not use it; it exists for literals, row-at-a-time engines, wire protocols
// and the public API's generic accessors.
//
// The payload lives in I for all integer-backed kinds (bool, ints, date,
// decimal), in F for doubles and in S for strings.
type Value struct {
	Typ  Type
	Null bool
	I    int64
	F    float64
	S    string
}

// Null values of each type.
func NullValue(t Type) Value { return Value{Typ: t, Null: true} }

// NewBool builds a BOOLEAN value.
func NewBool(b bool) Value {
	v := Value{Typ: Bool}
	if b {
		v.I = 1
	}
	return v
}

// NewInt builds an INTEGER-kind value with the given type.
func NewInt(t Type, i int64) Value { return Value{Typ: t, I: i} }

// NewDouble builds a DOUBLE value.
func NewDouble(f float64) Value { return Value{Typ: Double, F: f} }

// NewString builds a VARCHAR value.
func NewString(s string) Value { return Value{Typ: Varchar, S: s} }

// NewDate builds a DATE value from days since the Unix epoch.
func NewDate(days int32) Value { return Value{Typ: Date, I: int64(days)} }

// NewDecimal builds a DECIMAL(p,s) value from an already-scaled integer.
func NewDecimal(prec, scale int, scaled int64) Value {
	return Value{Typ: Decimal(prec, scale), I: scaled}
}

// Bool returns the boolean payload.
func (v Value) Bool() bool { return !v.Null && v.I != 0 }

// AsFloat converts any numeric value to float64 (null -> NaN).
func (v Value) AsFloat() float64 {
	if v.Null {
		return math.NaN()
	}
	switch v.Typ.Kind {
	case KDouble:
		return v.F
	case KDecimal:
		return float64(v.I) / float64(Pow10[v.Typ.Scale])
	default:
		return float64(v.I)
	}
}

// AsInt converts integer-backed values to int64; doubles are truncated.
func (v Value) AsInt() int64 {
	if v.Null {
		return NullInt64
	}
	if v.Typ.Kind == KDouble {
		return int64(v.F)
	}
	return v.I
}

// String renders the value in SQL result syntax ("NULL" for nulls).
func (v Value) String() string {
	if v.Null {
		return "NULL"
	}
	switch v.Typ.Kind {
	case KBool:
		if v.I != 0 {
			return "true"
		}
		return "false"
	case KTinyInt, KSmallInt, KInt, KBigInt:
		return strconv.FormatInt(v.I, 10)
	case KDouble:
		return strconv.FormatFloat(v.F, 'g', -1, 64)
	case KDecimal:
		return FormatDecimal(v.I, v.Typ.Scale)
	case KDate:
		return FormatDate(int32(v.I))
	case KVarchar:
		return v.S
	}
	return "?"
}

// Compare orders two values of compatible types: -1, 0, +1. NULL sorts first.
func Compare(a, b Value) int {
	if a.Null || b.Null {
		switch {
		case a.Null && b.Null:
			return 0
		case a.Null:
			return -1
		default:
			return 1
		}
	}
	ak, bk := a.Typ.Kind, b.Typ.Kind
	if ak == KVarchar || bk == KVarchar {
		return strings.Compare(a.S, b.S)
	}
	if ak == KDouble || bk == KDouble || (ak == KDecimal && bk == KDecimal && a.Typ.Scale != b.Typ.Scale) || (ak == KDecimal) != (bk == KDecimal) {
		af, bf := a.AsFloat(), b.AsFloat()
		switch {
		case af < bf:
			return -1
		case af > bf:
			return 1
		default:
			return 0
		}
	}
	switch {
	case a.I < b.I:
		return -1
	case a.I > b.I:
		return 1
	default:
		return 0
	}
}

// Equal reports value equality under Compare semantics (NULL != NULL).
func Equal(a, b Value) bool {
	if a.Null || b.Null {
		return false
	}
	return Compare(a, b) == 0
}

// ---------------------------------------------------------------------------
// Date handling: civil-date <-> epoch-day conversions (Hinnant's algorithm).
// ---------------------------------------------------------------------------

// DateFromYMD converts a civil date to days since 1970-01-01.
func DateFromYMD(y, m, d int) int32 {
	yy := int64(y)
	if m <= 2 {
		yy--
	}
	era := yy / 400
	if yy < 0 && yy%400 != 0 {
		era--
	}
	yoe := yy - era*400 // [0, 399]
	var mp int64
	if m > 2 {
		mp = int64(m) - 3
	} else {
		mp = int64(m) + 9
	}
	doy := (153*mp+2)/5 + int64(d) - 1
	doe := yoe*365 + yoe/4 - yoe/100 + doy
	return int32(era*146097 + doe - 719468)
}

// YMDFromDate converts days since 1970-01-01 back to a civil date.
func YMDFromDate(days int32) (y, m, d int) {
	z := int64(days) + 719468
	era := z / 146097
	if z < 0 && z%146097 != 0 {
		era--
	}
	doe := z - era*146097
	yoe := (doe - doe/1460 + doe/36524 - doe/146096) / 365
	yy := yoe + era*400
	doy := doe - (365*yoe + yoe/4 - yoe/100)
	mp := (5*doy + 2) / 153
	d = int(doy - (153*mp+2)/5 + 1)
	if mp < 10 {
		m = int(mp + 3)
	} else {
		m = int(mp - 9)
	}
	if m <= 2 {
		yy++
	}
	return int(yy), m, d
}

// ParseDate parses "YYYY-MM-DD" into epoch days.
func ParseDate(s string) (int32, error) {
	if len(s) != 10 || s[4] != '-' || s[7] != '-' {
		return 0, fmt.Errorf("mtypes: invalid date literal %q", s)
	}
	y, err1 := strconv.Atoi(s[0:4])
	m, err2 := strconv.Atoi(s[5:7])
	d, err3 := strconv.Atoi(s[8:10])
	if err1 != nil || err2 != nil || err3 != nil || m < 1 || m > 12 || d < 1 || d > 31 {
		return 0, fmt.Errorf("mtypes: invalid date literal %q", s)
	}
	return DateFromYMD(y, m, d), nil
}

// FormatDate renders epoch days as "YYYY-MM-DD".
func FormatDate(days int32) string {
	if days == NullInt32 {
		return "NULL"
	}
	y, m, d := YMDFromDate(days)
	return fmt.Sprintf("%04d-%02d-%02d", y, m, d)
}

// DateYear extracts the year of an epoch-day value.
func DateYear(days int32) int32 {
	y, _, _ := YMDFromDate(days)
	return int32(y)
}

// DateMonth extracts the month (1-12).
func DateMonth(days int32) int32 {
	_, m, _ := YMDFromDate(days)
	return int32(m)
}

// DateDay extracts the day of month (1-31).
func DateDay(days int32) int32 {
	_, _, d := YMDFromDate(days)
	return int32(d)
}

// AddMonths shifts a date by n months, clamping the day to the target month's
// length (SQL INTERVAL MONTH semantics).
func AddMonths(days int32, n int) int32 {
	y, m, d := YMDFromDate(days)
	tot := y*12 + (m - 1) + n
	ny, nm := tot/12, tot%12+1
	if tot < 0 && tot%12 != 0 {
		ny--
		nm = tot%12 + 13
	}
	if mx := daysInMonth(ny, nm); d > mx {
		d = mx
	}
	return DateFromYMD(ny, nm, d)
}

func daysInMonth(y, m int) int {
	switch m {
	case 1, 3, 5, 7, 8, 10, 12:
		return 31
	case 4, 6, 9, 11:
		return 30
	default:
		if (y%4 == 0 && y%100 != 0) || y%400 == 0 {
			return 29
		}
		return 28
	}
}

// ---------------------------------------------------------------------------
// Decimal handling.
// ---------------------------------------------------------------------------

// ParseDecimal parses a numeric literal into a scaled int64 with the given
// target scale, rounding half away from zero.
func ParseDecimal(s string, scale int) (int64, error) {
	if scale < 0 || scale > 17 {
		return 0, fmt.Errorf("mtypes: unsupported decimal scale %d", scale)
	}
	s = strings.TrimSpace(s)
	neg := false
	if strings.HasPrefix(s, "-") {
		neg = true
		s = s[1:]
	} else if strings.HasPrefix(s, "+") {
		s = s[1:]
	}
	intPart, fracPart := s, ""
	if i := strings.IndexByte(s, '.'); i >= 0 {
		intPart, fracPart = s[:i], s[i+1:]
	}
	if intPart == "" {
		intPart = "0"
	}
	v, err := strconv.ParseInt(intPart, 10, 64)
	if err != nil {
		return 0, fmt.Errorf("mtypes: invalid decimal literal %q", s)
	}
	v *= Pow10[scale]
	if fracPart != "" {
		// Keep scale+1 digits for rounding.
		if len(fracPart) > scale+1 {
			fracPart = fracPart[:scale+1]
		}
		f, err := strconv.ParseInt(fracPart, 10, 64)
		if err != nil {
			return 0, fmt.Errorf("mtypes: invalid decimal literal %q", s)
		}
		digits := len(fracPart)
		if digits <= scale {
			f *= Pow10[scale-digits]
		} else {
			rem := f % 10
			f /= 10
			if rem >= 5 {
				f++
			}
		}
		v += f
	}
	if neg {
		v = -v
	}
	return v, nil
}

// FormatDecimal renders a scaled int64 as a decimal string.
func FormatDecimal(scaled int64, scale int) string {
	if scaled == NullInt64 {
		return "NULL"
	}
	if scale == 0 {
		return strconv.FormatInt(scaled, 10)
	}
	neg := scaled < 0
	if neg {
		scaled = -scaled
	}
	p := Pow10[scale]
	intPart, frac := scaled/p, scaled%p
	s := fmt.Sprintf("%d.%0*d", intPart, scale, frac)
	if neg {
		return "-" + s
	}
	return s
}

// RescaleDecimal converts a scaled integer from one scale to another,
// rounding half away from zero when reducing scale.
func RescaleDecimal(v int64, from, to int) int64 {
	switch {
	case v == NullInt64 || from == to:
		return v
	case to > from:
		return v * Pow10[to-from]
	default:
		p := Pow10[from-to]
		q, r := v/p, v%p
		half := p / 2
		if r >= half {
			q++
		} else if r <= -half {
			q--
		}
		return q
	}
}
