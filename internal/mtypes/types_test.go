package mtypes

import (
	"math"
	"testing"
	"testing/quick"
	"time"
)

func TestTypeString(t *testing.T) {
	cases := map[string]Type{
		"BOOLEAN":       Bool,
		"TINYINT":       TinyInt,
		"SMALLINT":      SmallInt,
		"INTEGER":       Int,
		"BIGINT":        BigInt,
		"DOUBLE":        Double,
		"DATE":          Date,
		"VARCHAR":       Varchar,
		"VARCHAR(25)":   VarcharN(25),
		"DECIMAL(15,2)": Decimal(15, 2),
	}
	for want, typ := range cases {
		if got := typ.String(); got != want {
			t.Errorf("Type.String() = %q, want %q", got, want)
		}
	}
}

func TestParseTypeName(t *testing.T) {
	cases := map[string]Kind{
		"integer": KInt, "INT": KInt, "BigInt": KBigInt, "varchar": KVarchar,
		"TEXT": KVarchar, "double": KDouble, "FLOAT": KDouble, "decimal": KDecimal,
		"DATE": KDate, "boolean": KBool, "smallint": KSmallInt, "tinyint": KTinyInt,
		"nonsense": KUnknown,
	}
	for name, want := range cases {
		if got := ParseTypeName(name); got != want {
			t.Errorf("ParseTypeName(%q) = %v, want %v", name, got, want)
		}
	}
}

func TestByteWidth(t *testing.T) {
	if Int.ByteWidth() != 4 || BigInt.ByteWidth() != 8 || SmallInt.ByteWidth() != 2 ||
		TinyInt.ByteWidth() != 1 || Double.ByteWidth() != 8 || Date.ByteWidth() != 4 ||
		Decimal(10, 2).ByteWidth() != 8 || Varchar.ByteWidth() != 0 {
		t.Fatal("unexpected byte widths")
	}
}

func TestDateRoundTrip(t *testing.T) {
	// Known anchors.
	if d := DateFromYMD(1970, 1, 1); d != 0 {
		t.Fatalf("epoch = %d, want 0", d)
	}
	if d := DateFromYMD(1998, 12, 1); FormatDate(d) != "1998-12-01" {
		t.Fatalf("format = %s", FormatDate(d))
	}
	// Cross-check against the time package over a wide range.
	for days := int32(-200000); days <= 200000; days += 97 {
		y, m, d := YMDFromDate(days)
		want := time.Unix(0, 0).UTC().AddDate(0, 0, int(days))
		if y != want.Year() || m != int(want.Month()) || d != want.Day() {
			t.Fatalf("YMDFromDate(%d) = %d-%d-%d, want %v", days, y, m, d, want)
		}
		if back := DateFromYMD(y, m, d); back != days {
			t.Fatalf("DateFromYMD round trip: got %d want %d", back, days)
		}
	}
}

func TestDateRoundTripQuick(t *testing.T) {
	f := func(n int32) bool {
		days := n % 3000000
		y, m, d := YMDFromDate(days)
		return DateFromYMD(y, m, d) == days
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestParseDate(t *testing.T) {
	d, err := ParseDate("1995-03-15")
	if err != nil {
		t.Fatal(err)
	}
	if FormatDate(d) != "1995-03-15" {
		t.Fatalf("got %s", FormatDate(d))
	}
	for _, bad := range []string{"1995-3-15", "95-03-15", "1995/03/15", "1995-13-01", "1995-00-10", "xxxx-03-15"} {
		if _, err := ParseDate(bad); err == nil {
			t.Errorf("ParseDate(%q) should fail", bad)
		}
	}
}

func TestDateExtract(t *testing.T) {
	d, _ := ParseDate("1996-02-29")
	if DateYear(d) != 1996 || DateMonth(d) != 2 || DateDay(d) != 29 {
		t.Fatalf("extract failed: %d %d %d", DateYear(d), DateMonth(d), DateDay(d))
	}
}

func TestAddMonths(t *testing.T) {
	cases := []struct {
		in   string
		n    int
		want string
	}{
		{"1995-01-31", 1, "1995-02-28"},
		{"1996-01-31", 1, "1996-02-29"},
		{"1995-12-01", 3, "1996-03-01"},
		{"1995-03-15", -3, "1994-12-15"},
		{"1993-10-01", 12, "1994-10-01"},
	}
	for _, c := range cases {
		d, _ := ParseDate(c.in)
		if got := FormatDate(AddMonths(d, c.n)); got != c.want {
			t.Errorf("AddMonths(%s, %d) = %s, want %s", c.in, c.n, got, c.want)
		}
	}
}

func TestDecimalParseFormat(t *testing.T) {
	cases := []struct {
		in    string
		scale int
		want  string
	}{
		{"123.45", 2, "123.45"},
		{"123.4", 2, "123.40"},
		{"123", 2, "123.00"},
		{"-0.05", 2, "-0.05"},
		{"0.059", 2, "0.06"},   // round half away from zero
		{"-0.055", 2, "-0.06"}, // negative rounding
		{"0.05", 2, "0.05"},
		{".5", 1, "0.5"},
		{"7", 0, "7"},
	}
	for _, c := range cases {
		v, err := ParseDecimal(c.in, c.scale)
		if err != nil {
			t.Fatalf("ParseDecimal(%q): %v", c.in, err)
		}
		if got := FormatDecimal(v, c.scale); got != c.want {
			t.Errorf("ParseDecimal(%q, %d) -> %s, want %s", c.in, c.scale, got, c.want)
		}
	}
	if _, err := ParseDecimal("12a.3", 2); err == nil {
		t.Error("ParseDecimal should reject garbage")
	}
}

func TestRescaleDecimal(t *testing.T) {
	if got := RescaleDecimal(12345, 2, 4); got != 1234500 {
		t.Fatalf("up-scale: %d", got)
	}
	if got := RescaleDecimal(12345, 2, 0); got != 123 {
		t.Fatalf("down-scale round: %d", got)
	}
	if got := RescaleDecimal(12355, 2, 1); got != 1236 {
		t.Fatalf("down-scale round half up: %d", got)
	}
	if got := RescaleDecimal(-12355, 2, 1); got != -1236 {
		t.Fatalf("down-scale negative: %d", got)
	}
	if got := RescaleDecimal(NullInt64, 2, 4); got != NullInt64 {
		t.Fatalf("null passthrough: %d", got)
	}
}

func TestValueCompare(t *testing.T) {
	i5, i7 := NewInt(Int, 5), NewInt(Int, 7)
	if Compare(i5, i7) >= 0 || Compare(i7, i5) <= 0 || Compare(i5, i5) != 0 {
		t.Fatal("int compare broken")
	}
	d1 := NewDecimal(10, 2, 150) // 1.50
	f := NewDouble(1.5)
	if Compare(d1, f) != 0 {
		t.Fatal("decimal/double cross compare broken")
	}
	d2 := NewDecimal(10, 3, 1500) // 1.500
	if Compare(d1, d2) != 0 {
		t.Fatal("cross-scale decimal compare broken")
	}
	s1, s2 := NewString("apple"), NewString("banana")
	if Compare(s1, s2) >= 0 {
		t.Fatal("string compare broken")
	}
	n := NullValue(Int)
	if Compare(n, i5) != -1 || Compare(i5, n) != 1 || Compare(n, n) != 0 {
		t.Fatal("null ordering broken")
	}
	if Equal(n, n) {
		t.Fatal("NULL must not equal NULL")
	}
}

func TestValueString(t *testing.T) {
	cases := []struct {
		v    Value
		want string
	}{
		{NewBool(true), "true"},
		{NewBool(false), "false"},
		{NewInt(Int, -42), "-42"},
		{NewDouble(2.5), "2.5"},
		{NewDecimal(12, 2, -1234), "-12.34"},
		{NewString("hi"), "hi"},
		{NullValue(Varchar), "NULL"},
	}
	for _, c := range cases {
		if got := c.v.String(); got != c.want {
			t.Errorf("Value.String() = %q, want %q", got, c.want)
		}
	}
	d, _ := ParseDate("2016-06-01")
	if got := NewDate(d).String(); got != "2016-06-01" {
		t.Errorf("date string = %q", got)
	}
}

func TestAsFloatAsInt(t *testing.T) {
	if NewDecimal(10, 2, 250).AsFloat() != 2.5 {
		t.Fatal("decimal AsFloat")
	}
	if NewDouble(3.9).AsInt() != 3 {
		t.Fatal("double AsInt truncation")
	}
	if !math.IsNaN(NullValue(Double).AsFloat()) {
		t.Fatal("null AsFloat should be NaN")
	}
	if NullValue(Int).AsInt() != NullInt64 {
		t.Fatal("null AsInt sentinel")
	}
	if !IsNullF64(NullFloat64()) {
		t.Fatal("NaN sentinel check")
	}
}
