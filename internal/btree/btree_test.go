package btree

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestPutGet(t *testing.T) {
	tr := &Tree{}
	for i := int64(0); i < 1000; i++ {
		tr.Put(i*7%1000, []byte{byte(i)})
	}
	if tr.Len() != 1000 {
		t.Fatalf("len = %d", tr.Len())
	}
	v, ok := tr.Get(7)
	if !ok || v[0] != 1 {
		t.Fatalf("get: %v %v", v, ok)
	}
	if _, ok := tr.Get(10_000); ok {
		t.Fatal("phantom key")
	}
	// Replacement does not grow.
	tr.Put(7, []byte{99})
	if tr.Len() != 1000 {
		t.Fatal("replace grew tree")
	}
	v, _ = tr.Get(7)
	if v[0] != 99 {
		t.Fatal("replace lost")
	}
}

func TestAscendOrder(t *testing.T) {
	tr := &Tree{}
	rng := rand.New(rand.NewSource(5))
	for _, k := range rng.Perm(5000) {
		tr.Put(int64(k), nil)
	}
	prev := int64(-1)
	n := 0
	tr.Ascend(func(key int64, _ []byte) bool {
		if key <= prev {
			t.Fatalf("out of order: %d after %d", key, prev)
		}
		prev = key
		n++
		return true
	})
	if n != 5000 {
		t.Fatalf("visited %d", n)
	}
	// AscendFrom starts mid-tree.
	first := int64(-1)
	tr.AscendFrom(2500, func(key int64, _ []byte) bool {
		first = key
		return false
	})
	if first != 2500 {
		t.Fatalf("ascend from: %d", first)
	}
}

func TestDelete(t *testing.T) {
	tr := &Tree{}
	for i := int64(0); i < 200; i++ {
		tr.Put(i, nil)
	}
	if !tr.Delete(100) || tr.Delete(100) {
		t.Fatal("delete semantics")
	}
	if tr.Len() != 199 {
		t.Fatalf("len after delete: %d", tr.Len())
	}
	if _, ok := tr.Get(100); ok {
		t.Fatal("deleted key still present")
	}
}

// Property: the tree behaves like a map.
func TestTreeMatchesMap(t *testing.T) {
	f := func(keys []int16) bool {
		tr := &Tree{}
		m := map[int64][]byte{}
		for i, k := range keys {
			v := []byte{byte(i)}
			tr.Put(int64(k), v)
			m[int64(k)] = v
		}
		if tr.Len() != len(m) {
			return false
		}
		for k, want := range m {
			got, ok := tr.Get(k)
			if !ok || got[0] != want[0] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
