// Package btree implements an in-memory B+tree keyed by int64 with opaque
// byte-slice payloads. It is the storage engine of monetlite's SQLite-like
// baseline (internal/rowstore): rows are stored row-major in the tree keyed
// by rowid, exactly the layout whose scan behaviour the paper contrasts with
// columnar storage.
package btree

import "sort"

// order is the maximum number of keys per node.
const order = 64

type node struct {
	keys     []int64
	vals     [][]byte // leaf payloads
	children []*node  // nil for leaves
	next     *node    // leaf chain for range scans
}

func (n *node) leaf() bool { return n.children == nil }

// Tree is a B+tree. The zero value is an empty tree ready to use.
type Tree struct {
	root  *node
	count int
}

// Len returns the number of stored keys.
func (t *Tree) Len() int { return t.count }

// Get returns the payload stored under key.
func (t *Tree) Get(key int64) ([]byte, bool) {
	n := t.root
	if n == nil {
		return nil, false
	}
	for !n.leaf() {
		i := sort.Search(len(n.keys), func(i int) bool { return key < n.keys[i] })
		n = n.children[i]
	}
	i := sort.Search(len(n.keys), func(i int) bool { return n.keys[i] >= key })
	if i < len(n.keys) && n.keys[i] == key {
		return n.vals[i], true
	}
	return nil, false
}

// Put inserts or replaces the payload under key.
func (t *Tree) Put(key int64, val []byte) {
	if t.root == nil {
		t.root = &node{keys: []int64{key}, vals: [][]byte{val}}
		t.count = 1
		return
	}
	midKey, right, replaced := t.insert(t.root, key, val)
	if !replaced {
		t.count++
	}
	if right != nil {
		t.root = &node{keys: []int64{midKey}, children: []*node{t.root, right}}
	}
}

// insert adds key to the subtree; on split it returns the separator key and
// the new right sibling.
func (t *Tree) insert(n *node, key int64, val []byte) (int64, *node, bool) {
	if n.leaf() {
		i := sort.Search(len(n.keys), func(i int) bool { return n.keys[i] >= key })
		if i < len(n.keys) && n.keys[i] == key {
			n.vals[i] = val
			return 0, nil, true
		}
		n.keys = append(n.keys, 0)
		n.vals = append(n.vals, nil)
		copy(n.keys[i+1:], n.keys[i:])
		copy(n.vals[i+1:], n.vals[i:])
		n.keys[i] = key
		n.vals[i] = val
		if len(n.keys) <= order {
			return 0, nil, false
		}
		mid := len(n.keys) / 2
		right := &node{
			keys: append([]int64{}, n.keys[mid:]...),
			vals: append([][]byte{}, n.vals[mid:]...),
			next: n.next,
		}
		n.keys = n.keys[:mid]
		n.vals = n.vals[:mid]
		n.next = right
		return right.keys[0], right, false
	}
	i := sort.Search(len(n.keys), func(i int) bool { return key < n.keys[i] })
	midKey, right, replaced := t.insert(n.children[i], key, val)
	if right != nil {
		n.keys = append(n.keys, 0)
		n.children = append(n.children, nil)
		copy(n.keys[i+1:], n.keys[i:])
		copy(n.children[i+2:], n.children[i+1:])
		n.keys[i] = midKey
		n.children[i+1] = right
		if len(n.keys) > order {
			mid := len(n.keys) / 2
			sep := n.keys[mid]
			r := &node{
				keys:     append([]int64{}, n.keys[mid+1:]...),
				children: append([]*node{}, n.children[mid+1:]...),
			}
			n.keys = n.keys[:mid]
			n.children = n.children[:mid+1]
			return sep, r, replaced
		}
	}
	return 0, nil, replaced
}

// Delete removes key; reports whether it existed. (Simple implementation:
// leaves may underflow — acceptable for the analytical baseline whose
// workload is append-mostly.)
func (t *Tree) Delete(key int64) bool {
	n := t.root
	if n == nil {
		return false
	}
	for !n.leaf() {
		i := sort.Search(len(n.keys), func(i int) bool { return key < n.keys[i] })
		n = n.children[i]
	}
	i := sort.Search(len(n.keys), func(i int) bool { return n.keys[i] >= key })
	if i >= len(n.keys) || n.keys[i] != key {
		return false
	}
	n.keys = append(n.keys[:i], n.keys[i+1:]...)
	n.vals = append(n.vals[:i], n.vals[i+1:]...)
	t.count--
	return true
}

// AscendFrom walks keys >= from in order until fn returns false.
func (t *Tree) AscendFrom(from int64, fn func(key int64, val []byte) bool) {
	n := t.root
	if n == nil {
		return
	}
	for !n.leaf() {
		i := sort.Search(len(n.keys), func(i int) bool { return from < n.keys[i] })
		n = n.children[i]
	}
	i := sort.Search(len(n.keys), func(i int) bool { return n.keys[i] >= from })
	for n != nil {
		for ; i < len(n.keys); i++ {
			if !fn(n.keys[i], n.vals[i]) {
				return
			}
		}
		n = n.next
		i = 0
	}
}

// Ascend walks all keys in order.
func (t *Tree) Ascend(fn func(key int64, val []byte) bool) {
	t.AscendFrom(-1<<63, fn)
}
