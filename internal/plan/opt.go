package plan

import (
	"reflect"
	"sort"

	"monetlite/internal/mtypes"
	"monetlite/internal/vec"
)

// OptOpts tunes the optimizer. The zero value is the default (full
// cost-based optimization).
type OptOpts struct {
	// NoJoinReorder keeps the written join order (predicates are still
	// pushed down and attached). Used as the baseline in plan-quality tests.
	NoJoinReorder bool
}

// Optimize applies the relational-level optimizations the paper describes
// (§3.1): constant folding happened at bind time; this pass performs join
// ordering over cross-join regions, filter pushdown into scans, and
// projection pruning so scans only touch the columns a query needs (the
// column-store advantage the evaluation leans on).
func Optimize(cat Catalog, n Node) Node { return OptimizeWith(cat, n, OptOpts{}) }

// OptimizeWith is Optimize with explicit options.
func OptimizeWith(cat Catalog, n Node, opts OptOpts) Node {
	// Fuse first: the binder's Limit(Sort(…)) / Limit(Project(Sort(…)))
	// shapes are still intact here, and the later passes then see (and are
	// exercised on) the TopN node like any other operator.
	n = fuseTopN(n)
	n = sinkSemiFilters(n)
	n = optimizeJoins(cat, n, opts)
	n, _ = pruneNode(n, allRequired(len(n.Schema())))
	// Last, after pushdown has landed every single-table conjunct in its
	// scan: merge one-sided range pairs so imprints see both bounds at once.
	n = fuseScanRanges(n)
	// With shapes final, mark Window nodes whose input is already ordered
	// compatibly so they skip their physical sort.
	n = elideWindowSorts(n)
	// Stamp cardinality estimates on the final shapes; the executor traces
	// them against actuals (optimizer.cardinality in the MAL trace).
	annotateEst(cat, n)
	return n
}

func allRequired(n int) []bool {
	out := make([]bool, n)
	for i := range out {
		out[i] = true
	}
	return out
}

// ---------------------------------------------------------------------------
// Join ordering + filter pushdown.
// ---------------------------------------------------------------------------

// sinkSemiFilters pushes Filters through semi/anti joins into their left
// input. A semi/anti join's output schema and slot space are exactly its left
// input's, so any predicate above commutes with the join; sinking it lets the
// join-ordering region below see the predicate (a query that writes an IN
// subquery before its join conjuncts — TPC-H Q18's shape — would otherwise
// leave an unordered cross product under the semi join).
func sinkSemiFilters(n Node) Node {
	switch x := n.(type) {
	case *Filter:
		x.Input = sinkSemiFilters(x.Input)
		if j, ok := x.Input.(*Join); ok && (j.Kind == JoinSemi || j.Kind == JoinAnti) {
			j.Left = sinkSemiFilters(&Filter{Input: j.Left, Pred: x.Pred})
			return j
		}
		return x
	case *Join:
		x.Left = sinkSemiFilters(x.Left)
		x.Right = sinkSemiFilters(x.Right)
		return x
	case *Project:
		x.Input = sinkSemiFilters(x.Input)
		return x
	case *Aggregate:
		x.Input = sinkSemiFilters(x.Input)
		return x
	case *Sort:
		x.Input = sinkSemiFilters(x.Input)
		return x
	case *Limit:
		x.Input = sinkSemiFilters(x.Input)
		return x
	case *TopN:
		x.Input = sinkSemiFilters(x.Input)
		return x
	case *Distinct:
		x.Input = sinkSemiFilters(x.Input)
		return x
	case *Window:
		x.Input = sinkSemiFilters(x.Input)
		return x
	default:
		return n
	}
}

// optimizeJoins walks the plan; every maximal Filter/inner-Join region is
// re-planned: predicates are collected, single-relation conjuncts are pushed
// into scans, equi predicates drive a greedy smallest-first join order.
func optimizeJoins(cat Catalog, n Node, opts OptOpts) Node {
	switch x := n.(type) {
	case *Scan:
		return x
	case *Filter, *Join:
		return replanRegion(cat, n, opts)
	case *Project:
		x.Input = optimizeJoins(cat, x.Input, opts)
		return x
	case *Aggregate:
		x.Input = optimizeJoins(cat, x.Input, opts)
		return x
	case *Sort:
		x.Input = optimizeJoins(cat, x.Input, opts)
		return x
	case *Limit:
		x.Input = optimizeJoins(cat, x.Input, opts)
		return x
	case *TopN:
		x.Input = optimizeJoins(cat, x.Input, opts)
		return x
	case *Distinct:
		x.Input = optimizeJoins(cat, x.Input, opts)
		return x
	case *Window:
		x.Input = optimizeJoins(cat, x.Input, opts)
		return x
	default:
		return n
	}
}

// region is a flattened conjunction of relations and predicates.
type region struct {
	leaves []Node // ordered; concatenated schemas form the region schema
	starts []int  // slot offset of each leaf in the region schema
	preds  []Expr // over the region schema
}

// collectRegion flattens Filters and INNER joins. Semi/anti/left joins and
// everything else become leaves (their insides are optimized recursively).
func collectRegion(cat Catalog, n Node, offset int, r *region, opts OptOpts) {
	switch x := n.(type) {
	case *Filter:
		collectRegion(cat, x.Input, offset, r, opts)
		for _, c := range splitBoundConjuncts(x.Pred) {
			r.preds = append(r.preds, MapSlots(c, func(s int) int { return s + offset }))
		}
	case *Join:
		if x.Kind != JoinInner {
			r.leaves = append(r.leaves, optimizeNonInnerJoin(cat, x, opts))
			r.starts = append(r.starts, offset)
			return
		}
		nLeft := len(x.Left.Schema())
		collectRegion(cat, x.Left, offset, r, opts)
		collectRegion(cat, x.Right, offset+nLeft, r, opts)
		for i := range x.EquiL {
			l := MapSlots(x.EquiL[i], func(s int) int { return s + offset })
			rr := MapSlots(x.EquiR[i], func(s int) int { return s + offset + nLeft })
			r.preds = append(r.preds, &BinOp{Kind: BinCmp, Cmp: vec.CmpEq, L: l, R: rr, Typ: mtypes.Bool})
		}
		if x.Residual != nil {
			r.preds = append(r.preds, MapSlots(x.Residual, func(s int) int { return s + offset }))
		}
	default:
		r.leaves = append(r.leaves, optimizeJoinsInside(cat, n, opts))
		r.starts = append(r.starts, offset)
	}
}

// optimizeJoinsInside recurses into non-region nodes (derived tables etc.).
func optimizeJoinsInside(cat Catalog, n Node, opts OptOpts) Node {
	switch x := n.(type) {
	case *Scan:
		return x
	default:
		return optimizeJoins(cat, x, opts)
	}
}

func optimizeNonInnerJoin(cat Catalog, j *Join, opts OptOpts) Node {
	j.Left = optimizeJoins(cat, j.Left, opts)
	j.Right = optimizeJoins(cat, j.Right, opts)
	return j
}

func replanRegion(cat Catalog, n Node, opts OptOpts) Node {
	r := &region{}
	collectRegion(cat, n, 0, r, opts)
	// OR predicates whose branches share conjuncts (TPC-H Q19's shape) are
	// factored so the common part — often the join condition itself — becomes
	// a separate conjunct that can serve as an equi edge or be pushed down.
	var preds []Expr
	for _, p := range r.preds {
		preds = append(preds, hoistOrCommonConjuncts(p)...)
	}
	r.preds = preds
	if len(r.leaves) == 1 && onlySingleLeafPreds(r) {
		// No join ordering to do: push predicates and return.
		return attachPreds(r.leaves[0], r.preds)
	}
	return orderJoins(cat, n, r, opts)
}

// hoistOrCommonConjuncts rewrites (A ∧ B1) ∨ (A ∧ B2) … into A ∧ (B1 ∨ B2 …)
// when every OR branch shares the conjunct A (structural equality). In SQL's
// three-valued WHERE semantics the forms reject the same rows. Returns the
// original predicate unsplit when no conjunct is common to all branches.
func hoistOrCommonConjuncts(p Expr) []Expr {
	branches := splitOrBranches(p)
	if len(branches) < 2 {
		return []Expr{p}
	}
	conjs := make([][]Expr, len(branches))
	for i, b := range branches {
		conjs[i] = splitBoundConjuncts(b)
	}
	var common []Expr
	for _, c := range conjs[0] {
		inAll := true
		for _, other := range conjs[1:] {
			found := false
			for _, oc := range other {
				if exprEqual(c, oc) {
					found = true
					break
				}
			}
			if !found {
				inAll = false
				break
			}
		}
		if inAll {
			common = append(common, c)
		}
	}
	if len(common) == 0 {
		return []Expr{p}
	}
	// Rebuild each branch without the common conjuncts.
	var rest Expr
	restNeeded := false
	for i, cs := range conjs {
		var branch Expr
		for _, c := range cs {
			skip := false
			for _, cm := range common {
				if exprEqual(c, cm) {
					skip = true
					break
				}
			}
			if !skip {
				branch = andExpr(branch, c)
			}
		}
		if branch == nil {
			// One branch was exactly the common part: the OR adds nothing.
			restNeeded = false
			break
		}
		if i == 0 {
			rest = branch
			restNeeded = true
		} else {
			rest = &BinOp{Kind: BinOr, L: rest, R: branch, Typ: mtypes.Bool}
		}
	}
	out := common
	if restNeeded {
		out = append(out, rest)
	}
	return out
}

func splitOrBranches(e Expr) []Expr {
	if bo, ok := e.(*BinOp); ok && bo.Kind == BinOr {
		return append(splitOrBranches(bo.L), splitOrBranches(bo.R)...)
	}
	return []Expr{e}
}

func onlySingleLeafPreds(r *region) bool { return len(r.leaves) == 1 }

// attachPreds pushes predicates into a single leaf (scan filters when
// possible).
func attachPreds(leaf Node, preds []Expr) Node {
	out := leaf
	if sc, ok := leaf.(*Scan); ok {
		sc.Filters = append(sc.Filters, preds...)
		return sc
	}
	for _, p := range preds {
		out = &Filter{Input: out, Pred: p}
	}
	return out
}

// leafOf returns which leaf a region slot belongs to plus its local slot.
func (r *region) leafOf(slot int) (int, int) {
	i := sort.Search(len(r.starts), func(k int) bool { return r.starts[k] > slot }) - 1
	return i, slot - r.starts[i]
}

// predLeaves returns the set of leaves a predicate touches.
func (r *region) predLeaves(p Expr) map[int]bool {
	used := map[int]bool{}
	SlotsUsed(p, used)
	leaves := map[int]bool{}
	for s := range used {
		l, _ := r.leafOf(s)
		leaves[l] = true
	}
	return leaves
}

// orderJoins builds a left-deep join tree over the region: leaf
// cardinalities come from the shared estimator (EstimateCard), equi
// predicates between leaf pairs become selectivity-weighted graph edges, and
// chooseJoinOrder (exact DP up to dpMaxLeaves relations, cost-greedy above)
// picks the sequence. The output is wrapped in a Project restoring the
// region's original slot order so parents are unaffected.
func orderJoins(cat Catalog, orig Node, r *region, opts OptOpts) Node {
	nLeaves := len(r.leaves)
	// Assign single-leaf predicates to their leaf.
	leafPreds := make([][]Expr, nLeaves)
	var joinPreds []Expr
	for _, p := range r.preds {
		ls := r.predLeaves(p)
		if len(ls) == 1 {
			for l := range ls {
				leafPreds[l] = append(leafPreds[l], p)
			}
		} else {
			joinPreds = append(joinPreds, p)
		}
	}
	// Push single-leaf predicates (remapped to leaf-local slots).
	est := newEstimator(cat)
	leaves := make([]Node, nLeaves)
	g := newJoinGraph(make([]float64, nLeaves))
	for i, leaf := range r.leaves {
		var local []Expr
		for _, p := range leafPreds[i] {
			local = append(local, MapSlots(p, func(s int) int { return s - r.starts[i] }))
		}
		leaves[i] = attachPreds(leaf, local)
		g.cards[i] = est.card(leaves[i])
	}
	// Two-leaf equi predicates become graph edges weighted by the estimated
	// key selectivity (1/max ndv, PK-FK fallback).
	for _, p := range joinPreds {
		if !isEquiPred(p) {
			continue
		}
		ls := r.predLeaves(p)
		if len(ls) != 2 {
			continue
		}
		var ab []int
		for l := range ls {
			ab = append(ab, l)
		}
		sort.Ints(ab)
		a, b := ab[0], ab[1]
		bo := p.(*BinOp)
		ea, eb := bo.L, bo.R
		if la := r.predLeaves(ea); !la[a] {
			ea, eb = eb, ea
		}
		localA := MapSlots(ea, func(s int) int { return s - r.starts[a] })
		localB := MapSlots(eb, func(s int) int { return s - r.starts[b] })
		g.addEdge(a, b, est.equiPairSel(leaves[a], leaves[b], localA, localB, g.cards[a], g.cards[b]))
	}

	perm := chooseJoinOrder(g)
	if opts.NoJoinReorder {
		perm = identityPerm(nLeaves)
	}

	done := make([]bool, nLeaves)
	usedPred := make([]bool, len(joinPreds))
	// newPos[leaf] = slot offset of the leaf in the built plan.
	newPos := make([]int, nLeaves)

	start := perm[0]
	cur := leaves[start]
	done[start] = true
	newPos[start] = 0
	curWidth := len(leaves[start].Schema())

	remapGlobal := func(p Expr) Expr {
		return MapSlots(p, func(s int) int {
			l, local := r.leafOf(s)
			return newPos[l] + local
		})
	}

	for count := 1; count < nLeaves; count++ {
		next := perm[count]
		rightNode := leaves[next]
		nRight := len(rightNode.Schema())
		newPos[next] = curWidth
		done[next] = true

		j := &Join{Kind: JoinInner, Left: cur, Right: rightNode}
		// Attach all now-satisfiable predicates.
		for pi, p := range joinPreds {
			if usedPred[pi] {
				continue
			}
			ready := true
			touchesNext := false
			for l := range r.predLeaves(p) {
				if !done[l] {
					ready = false
					break
				}
				if l == next {
					touchesNext = true
				}
			}
			if !ready {
				continue
			}
			usedPred[pi] = true
			mapped := remapGlobal(p)
			if touchesNext {
				if le, re, ok := equiSides(mapped, curWidth, curWidth+nRight); ok {
					j.EquiL = append(j.EquiL, le)
					j.EquiR = append(j.EquiR, re)
					continue
				}
			}
			j.Residual = andExpr(j.Residual, mapped)
		}
		cur = j
		curWidth += nRight
	}
	// Any stragglers (e.g. preds whose leaves were all in the first leaf).
	for pi, p := range joinPreds {
		if !usedPred[pi] {
			cur = &Filter{Input: cur, Pred: remapGlobal(p)}
		}
	}
	// Restore the original slot order for parent nodes.
	origSchema := orig.Schema()
	exprs := make([]Expr, len(origSchema))
	out := make(Schema, len(origSchema))
	curSchema := cur.Schema()
	for s := 0; s < len(origSchema); s++ {
		l, local := r.leafOf(s)
		ns := newPos[l] + local
		exprs[s] = &ColRef{Slot: ns, Typ: curSchema[ns].Typ, Name: curSchema[ns].Name}
		out[s] = origSchema[s]
	}
	return &Project{Input: cur, Exprs: exprs, Out: out}
}

func isEquiPred(p Expr) bool {
	bo, ok := p.(*BinOp)
	return ok && bo.Kind == BinCmp && bo.Cmp == vec.CmpEq
}

// ---------------------------------------------------------------------------
// Projection pruning.
// ---------------------------------------------------------------------------

// pruneNode trims unused columns bottom-up. It returns the new node plus the
// mapping old-slot -> new-slot for the node's output schema.
func pruneNode(n Node, required []bool) (Node, map[int]int) {
	switch x := n.(type) {
	case *Scan:
		// Filters count as required.
		req := append([]bool(nil), required...)
		for _, f := range x.Filters {
			used := map[int]bool{}
			SlotsUsed(f, used)
			for s := range used {
				req[s] = true
			}
		}
		m := map[int]int{}
		var cols []int
		var out Schema
		for i, r := range req {
			if r {
				m[i] = len(cols)
				cols = append(cols, x.Cols[i])
				out = append(out, x.Out[i])
			}
		}
		if len(cols) == 0 { // keep at least one column for row counting
			m[0] = 0
			cols = []int{x.Cols[0]}
			out = Schema{x.Out[0]}
		}
		filters := make([]Expr, len(x.Filters))
		for i, f := range x.Filters {
			filters[i] = MapSlots(f, func(s int) int { return m[s] })
		}
		return &Scan{Table: x.Table, Cols: cols, Out: out, Filters: filters}, m
	case *Filter:
		req := append([]bool(nil), required...)
		used := map[int]bool{}
		SlotsUsed(x.Pred, used)
		collectSubplanFree(x.Pred)
		for s := range used {
			req[s] = true
		}
		in, m := pruneNode(x.Input, req)
		return &Filter{Input: in, Pred: mapExprSlots(x.Pred, m)}, m
	case *Project:
		childReq := make([]bool, len(x.Input.Schema()))
		var exprs []Expr
		var out Schema
		m := map[int]int{}
		for i, e := range x.Exprs {
			if !required[i] {
				continue
			}
			used := map[int]bool{}
			SlotsUsed(e, used)
			for s := range used {
				childReq[s] = true
			}
			m[i] = len(exprs)
			exprs = append(exprs, e)
			out = append(out, x.Out[i])
		}
		if len(exprs) == 0 && len(x.Exprs) > 0 {
			m[0] = 0
			exprs = append(exprs, x.Exprs[0])
			out = append(out, x.Out[0])
			used := map[int]bool{}
			SlotsUsed(x.Exprs[0], used)
			for s := range used {
				childReq[s] = true
			}
		}
		if x.Input == nil {
			return &Project{Input: nil, Exprs: exprs, Out: out}, m
		}
		in, cm := pruneNode(x.Input, childReq)
		for i := range exprs {
			exprs[i] = mapExprSlots(exprs[i], cm)
		}
		return &Project{Input: in, Exprs: exprs, Out: out}, m
	case *Join:
		nL := len(x.Left.Schema())
		leftReq := make([]bool, nL)
		var rightReq []bool
		if x.Kind == JoinSemi || x.Kind == JoinAnti {
			copy(leftReq, required)
			rightReq = make([]bool, len(x.Right.Schema()))
		} else {
			rightReq = make([]bool, len(x.Right.Schema()))
			for s, r := range required {
				if s < nL {
					leftReq[s] = leftReq[s] || r
				} else {
					rightReq[s-nL] = rightReq[s-nL] || r
				}
			}
		}
		mark := func(e Expr, left bool) {
			used := map[int]bool{}
			SlotsUsed(e, used)
			for s := range used {
				if left {
					leftReq[s] = true
				} else {
					rightReq[s] = true
				}
			}
		}
		for i := range x.EquiL {
			mark(x.EquiL[i], true)
			mark(x.EquiR[i], false)
		}
		if x.Residual != nil {
			used := map[int]bool{}
			SlotsUsed(x.Residual, used)
			for s := range used {
				if s < nL {
					leftReq[s] = true
				} else {
					rightReq[s-nL] = true
				}
			}
		}
		lIn, lm := pruneNode(x.Left, leftReq)
		rIn, rm := pruneNode(x.Right, rightReq)
		nlNew := len(lIn.Schema())
		j := &Join{Kind: x.Kind, Left: lIn, Right: rIn}
		for i := range x.EquiL {
			j.EquiL = append(j.EquiL, mapExprSlots(x.EquiL[i], lm))
			j.EquiR = append(j.EquiR, mapExprSlots(x.EquiR[i], rm))
		}
		if x.Residual != nil {
			j.Residual = MapSlots(x.Residual, func(s int) int {
				if s < nL {
					return lm[s]
				}
				return nlNew + rm[s-nL]
			})
		}
		m := map[int]int{}
		for s, ns := range lm {
			m[s] = ns
		}
		if x.Kind != JoinSemi && x.Kind != JoinAnti {
			for s, ns := range rm {
				m[nL+s] = nlNew + ns
			}
		}
		return j, m
	case *Aggregate:
		childReq := make([]bool, len(x.Input.Schema()))
		for _, g := range x.GroupBy {
			used := map[int]bool{}
			SlotsUsed(g, used)
			for s := range used {
				childReq[s] = true
			}
		}
		for _, a := range x.Aggs {
			if a.Arg != nil {
				used := map[int]bool{}
				SlotsUsed(a.Arg, used)
				for s := range used {
					childReq[s] = true
				}
			}
		}
		if len(x.GroupBy) == 0 && len(x.Aggs) > 0 {
			// COUNT(*)-only aggregates still need one column to count.
			any := false
			for _, r := range childReq {
				any = any || r
			}
			if !any && len(childReq) > 0 {
				childReq[0] = true
			}
		}
		in, cm := pruneNode(x.Input, childReq)
		agg := &Aggregate{Input: in, Names: x.Names}
		for _, g := range x.GroupBy {
			agg.GroupBy = append(agg.GroupBy, mapExprSlots(g, cm))
		}
		for _, a := range x.Aggs {
			na := a
			if a.Arg != nil {
				na.Arg = mapExprSlots(a.Arg, cm)
			}
			agg.Aggs = append(agg.Aggs, na)
		}
		return agg, identityMap(len(agg.Schema()))
	case *Sort:
		req := append([]bool(nil), required...)
		for _, k := range x.Keys {
			used := map[int]bool{}
			SlotsUsed(k.E, used)
			for s := range used {
				req[s] = true
			}
		}
		in, m := pruneNode(x.Input, req)
		keys := make([]SortSpec, len(x.Keys))
		for i, k := range x.Keys {
			keys[i] = SortSpec{E: mapExprSlots(k.E, m), Desc: k.Desc}
		}
		return &Sort{Input: in, Keys: keys}, m
	case *Limit:
		in, m := pruneNode(x.Input, required)
		return &Limit{Input: in, N: x.N, Offset: x.Offset}, m
	case *TopN:
		req := append([]bool(nil), required...)
		for _, k := range x.Keys {
			used := map[int]bool{}
			SlotsUsed(k.E, used)
			for s := range used {
				req[s] = true
			}
		}
		in, m := pruneNode(x.Input, req)
		keys := make([]SortSpec, len(x.Keys))
		for i, k := range x.Keys {
			keys[i] = SortSpec{E: mapExprSlots(k.E, m), Desc: k.Desc}
		}
		return &TopN{Input: in, Keys: keys, N: x.N, Offset: x.Offset}, m
	case *Distinct:
		// Distinct compares whole rows: everything is required.
		in, m := pruneNode(x.Input, allRequired(len(x.Input.Schema())))
		return &Distinct{Input: in}, m
	case *Window:
		// Window passes every input column through, and its expressions may
		// hold AggRefs (which SlotsUsed does not track), so the input keeps
		// all columns — pruning still applies below the aggregate/join inputs.
		in, m := pruneNode(x.Input, allRequired(len(x.Input.Schema())))
		w := &Window{Input: in, SortFree: x.SortFree}
		for _, pe := range x.PartitionBy {
			w.PartitionBy = append(w.PartitionBy, mapExprSlots(pe, m))
		}
		for _, k := range x.OrderBy {
			w.OrderBy = append(w.OrderBy, SortSpec{E: mapExprSlots(k.E, m), Desc: k.Desc})
		}
		for _, c := range x.Calls {
			nc := c
			if c.Arg != nil {
				nc.Arg = mapExprSlots(c.Arg, m)
			}
			if c.Default != nil {
				nc.Default = mapExprSlots(c.Default, m)
			}
			w.Calls = append(w.Calls, nc)
		}
		return w, identityMap(len(w.Schema()))
	default:
		return n, identityMap(len(n.Schema()))
	}
}

// ---------------------------------------------------------------------------
// Top-N fusion.
// ---------------------------------------------------------------------------

// fuseTopN rewrites Limit(Sort(…)) — and Limit(Project(Sort(…))), the shape
// the binder emits when ORDER BY references hidden sort columns, since a
// Project is row-preserving and commutes with Limit — into a single TopN
// node. Only real LIMIT clauses fuse (N < NoLimit): an OFFSET-only query
// would make the bounded heap as large as the input, which is just a slower
// full sort.
func fuseTopN(n Node) Node {
	switch x := n.(type) {
	case *Limit:
		x.Input = fuseTopN(x.Input)
		if x.N >= NoLimit {
			return x
		}
		if s, ok := x.Input.(*Sort); ok {
			return &TopN{Input: s.Input, Keys: s.Keys, N: x.N, Offset: x.Offset}
		}
		if p, ok := x.Input.(*Project); ok && p.Input != nil {
			if s, ok := p.Input.(*Sort); ok {
				p.Input = &TopN{Input: s.Input, Keys: s.Keys, N: x.N, Offset: x.Offset}
				return p
			}
		}
		return x
	case *Filter:
		x.Input = fuseTopN(x.Input)
	case *Project:
		if x.Input != nil {
			x.Input = fuseTopN(x.Input)
		}
	case *Join:
		x.Left = fuseTopN(x.Left)
		x.Right = fuseTopN(x.Right)
	case *Aggregate:
		x.Input = fuseTopN(x.Input)
	case *Sort:
		x.Input = fuseTopN(x.Input)
	case *TopN:
		x.Input = fuseTopN(x.Input)
	case *Distinct:
		x.Input = fuseTopN(x.Input)
	case *Window:
		x.Input = fuseTopN(x.Input)
	}
	return n
}

// ---------------------------------------------------------------------------
// Range-conjunct fusion.
// ---------------------------------------------------------------------------

// fuseScanRanges walks the plan and fuses each scan's pushed-down filters.
func fuseScanRanges(n Node) Node {
	switch x := n.(type) {
	case *Scan:
		x.Filters = fuseRangeConjuncts(x.Filters)
	case *Filter:
		x.Input = fuseScanRanges(x.Input)
	case *Project:
		if x.Input != nil {
			x.Input = fuseScanRanges(x.Input)
		}
	case *Join:
		x.Left = fuseScanRanges(x.Left)
		x.Right = fuseScanRanges(x.Right)
	case *Aggregate:
		x.Input = fuseScanRanges(x.Input)
	case *Sort:
		x.Input = fuseScanRanges(x.Input)
	case *TopN:
		x.Input = fuseScanRanges(x.Input)
	case *Limit:
		x.Input = fuseScanRanges(x.Input)
	case *Distinct:
		x.Input = fuseScanRanges(x.Input)
	case *Window:
		x.Input = fuseScanRanges(x.Input)
	}
	return n
}

// ---------------------------------------------------------------------------
// Window sort elision.
// ---------------------------------------------------------------------------

// elideWindowSorts marks Window nodes whose input is already ordered
// compatibly, so execution skips the physical sort. Compatible means the
// input's known ordering starts with the window's partition expressions (in
// either direction — partitions only need to be contiguous, and window
// results are written back by input position, so inter-partition order is
// irrelevant) followed by exactly the window's order keys. A stable sort of
// input already ordered that way is the identity permutation, so skipping it
// is bit-identical to performing it.
func elideWindowSorts(n Node) Node {
	for _, c := range n.Children() {
		elideWindowSorts(c)
	}
	if w, ok := n.(*Window); ok {
		if ord := knownOrdering(w.Input); windowOrderSubsumed(w, ord) {
			w.SortFree = true
		}
	}
	// Recurse into scalar subplans too (cheap completeness).
	return n
}

// knownOrdering returns the sort keys a node's output is known to be ordered
// by, or nil. Filter/Limit/Window preserve relative row order and schema
// prefixes, so the ordering passes through them.
func knownOrdering(n Node) []SortSpec {
	switch x := n.(type) {
	case *Sort:
		return x.Keys
	case *TopN:
		return x.Keys
	case *Filter:
		return knownOrdering(x.Input)
	case *Limit:
		return knownOrdering(x.Input)
	case *Window:
		return knownOrdering(x.Input)
	default:
		return nil
	}
}

// windowOrderSubsumed reports whether ord begins with w's partition
// expressions (any direction) followed by w's order keys (exact direction).
func windowOrderSubsumed(w *Window, ord []SortSpec) bool {
	need := len(w.PartitionBy) + len(w.OrderBy)
	if need == 0 || len(ord) < need {
		return false
	}
	for i, pe := range w.PartitionBy {
		if !exprEqual(ord[i].E, pe) {
			return false
		}
	}
	for j, k := range w.OrderBy {
		o := ord[len(w.PartitionBy)+j]
		if o.Desc != k.Desc || !exprEqual(o.E, k.E) {
			return false
		}
	}
	return true
}

// exprEqual compares bound expressions structurally, ignoring display names
// on column references (a sort key bound through an alias must still match).
func exprEqual(a, b Expr) bool {
	if ca, ok := a.(*ColRef); ok {
		if cb, ok := b.(*ColRef); ok {
			return ca.Slot == cb.Slot && ca.Typ == cb.Typ
		}
		return false
	}
	return reflect.DeepEqual(a, b)
}

// colConstBound recognizes a one-sided comparison between a bare column and a
// constant (either operand order), normalized to column-on-the-left form.
func colConstBound(f Expr) (cr *ColRef, op vec.CmpOp, c *Const, ok bool) {
	bo, isCmp := f.(*BinOp)
	if !isCmp || bo.Kind != BinCmp {
		return nil, 0, nil, false
	}
	if cl, okL := bo.L.(*ColRef); okL {
		if cc, okR := bo.R.(*Const); okR {
			return cl, bo.Cmp, cc, true
		}
	}
	if cr, okR := bo.R.(*ColRef); okR {
		if cc, okL := bo.L.(*Const); okL {
			return cr, bo.Cmp.Flip(), cc, true
		}
	}
	return nil, 0, nil, false
}

// fuseRangeConjuncts merges a lower-bound conjunct (col > / >= const) with an
// upper-bound conjunct (col < / <= const) over the same column into a single
// BetweenExpr (half-open via LoExcl/HiExcl), so the executor runs one range
// selection — and one imprints probe — instead of two one-sided selections
// intersected. The fused node takes the earlier conjunct's position;
// everything unpaired keeps its place and order. Semantics are unchanged:
// the conjunction and the range agree on every input including NULLs (both
// reject them) and inverted bounds (both select nothing).
func fuseRangeConjuncts(filters []Expr) []Expr {
	if len(filters) < 2 {
		return filters
	}
	type bound struct {
		cr *ColRef
		op vec.CmpOp
		c  *Const
	}
	bounds := make([]*bound, len(filters))
	for i, f := range filters {
		if cr, op, c, ok := colConstBound(f); ok {
			bounds[i] = &bound{cr: cr, op: op, c: c}
		}
	}
	used := make([]bool, len(filters))
	out := make([]Expr, 0, len(filters))
	for i, f := range filters {
		if used[i] {
			continue
		}
		b := bounds[i]
		if b == nil || (b.op != vec.CmpGt && b.op != vec.CmpGe && b.op != vec.CmpLt && b.op != vec.CmpLe) {
			out = append(out, f)
			continue
		}
		lower := b.op == vec.CmpGt || b.op == vec.CmpGe
		fused := false
		for j := i + 1; j < len(filters); j++ {
			p := bounds[j]
			if used[j] || p == nil || p.cr.Slot != b.cr.Slot {
				continue
			}
			pLower := p.op == vec.CmpGt || p.op == vec.CmpGe
			pUpper := p.op == vec.CmpLt || p.op == vec.CmpLe
			if (!pLower && !pUpper) || pLower == lower {
				// Equality/inequality conjuncts are not range bounds, and
				// same-direction bounds don't pair.
				continue
			}
			lo, hi := b, p
			if !lower {
				lo, hi = p, b
			}
			out = append(out, &BetweenExpr{
				E:      &ColRef{Slot: b.cr.Slot, Typ: b.cr.Typ, Name: b.cr.Name},
				Lo:     lo.c,
				Hi:     hi.c,
				LoExcl: lo.op == vec.CmpGt,
				HiExcl: hi.op == vec.CmpLt,
			})
			used[j] = true
			fused = true
			break
		}
		if !fused {
			out = append(out, f)
		}
	}
	return out
}

func identityMap(n int) map[int]int {
	m := make(map[int]int, n)
	for i := 0; i < n; i++ {
		m[i] = i
	}
	return m
}

// mapExprSlots remaps ColRefs and recursively prunes subplans.
func mapExprSlots(e Expr, m map[int]int) Expr {
	out := MapSlots(e, func(s int) int {
		if ns, ok := m[s]; ok {
			return ns
		}
		return s
	})
	return out
}

// collectSubplanFree recursively prunes uncorrelated subplans inside preds.
func collectSubplanFree(e Expr) {
	WalkExpr(e, func(x Expr) bool {
		if sp, ok := x.(*SubplanExpr); ok {
			sp.Plan, _ = pruneNode(sp.Plan, allRequired(len(sp.Plan.Schema())))
		}
		return true
	})
}
