package plan

import (
	"math"

	"monetlite/internal/mtypes"
)

// FrameRowBounds returns the inclusive [lo, hi] partition offsets of an
// explicit ROWS frame for row i of an m-row partition; hi < lo means an
// empty frame. Both engines use this one computation so they cannot drift.
// Offset arithmetic runs in int64 with saturation: the parser admits literal
// offsets up to MaxInt64, which must read as "unbounded", never wrap into a
// silently empty (or inverted) frame.
func FrameRowBounds(f *Frame, i, m int) (lo, hi int) {
	bound := func(b FrameBound, unbounded int64) int64 {
		switch b.Kind {
		case FramePreceding:
			return int64(i) - b.N
		case FrameCurrentRow:
			return int64(i)
		case FrameFollowing:
			if b.N > math.MaxInt64-int64(i) {
				return math.MaxInt64
			}
			return int64(i) + b.N
		default: // FrameUnboundedPreceding / FrameUnboundedFollowing
			return unbounded
		}
	}
	lo64 := bound(f.Lo, 0)
	hi64 := bound(f.Hi, int64(m-1))
	lo64 = max(lo64, 0)
	lo64 = min(lo64, int64(m)) // past-the-end start: empty frame, int-safe
	hi64 = min(hi64, int64(m-1))
	hi64 = max(hi64, -1) // before-the-start end: empty frame, int-safe
	return int(lo64), int(hi64)
}

// Shared windowed-AVG arithmetic. The columnar engine (typed kernels) and the
// rowstore oracle (row-at-a-time) both accumulate window frames in the same
// domain — int64 for the integer-backed kinds, float64 for DOUBLE, always in
// frame order — and must divide identically too, so the differential tests
// can assert bitwise equality on doubles. These helpers are that contract.

// WinAvgInt finishes an integer-backed windowed AVG: isum is the frame's sum
// at the argument's decimal scale, count its non-NULL cardinality (> 0).
func WinAvgInt(isum int64, scale int, count int64) float64 {
	v := float64(isum)
	if scale > 0 {
		v /= float64(mtypes.Pow10[scale])
	}
	return v / float64(count)
}

// WinAvgFloat finishes a DOUBLE windowed AVG.
func WinAvgFloat(fsum float64, count int64) float64 {
	return fsum / float64(count)
}
