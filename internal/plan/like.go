package plan

// MatchLike implements SQL LIKE matching with % (any run) and _ (any single
// byte) wildcards. MonetDBLite removed its PCRE dependency by shipping its
// own LIKE implementation (paper §3.4 "Dependencies"); monetlite does the
// same — no regexp import anywhere in the engine.
//
// Matching is byte-wise (sufficient for ASCII workloads like TPC-H; documented
// limitation for multi-byte code points under '_').
func MatchLike(s, pattern string) bool {
	// Iterative matcher with backtracking on the last '%'.
	si, pi := 0, 0
	star, sBack := -1, 0
	for si < len(s) {
		switch {
		case pi < len(pattern) && (pattern[pi] == '_' || pattern[pi] == s[si]):
			si++
			pi++
		case pi < len(pattern) && pattern[pi] == '%':
			star = pi
			sBack = si
			pi++
		case star >= 0:
			// Backtrack: let the last % absorb one more byte.
			sBack++
			si = sBack
			pi = star + 1
		default:
			return false
		}
	}
	for pi < len(pattern) && pattern[pi] == '%' {
		pi++
	}
	return pi == len(pattern)
}

// LikePrefix reports whether the pattern is a simple prefix match
// ("abc%" with no other wildcards) and returns the prefix. The executor uses
// this to turn LIKE into a range select that imprints can accelerate.
func LikePrefix(pattern string) (string, bool) {
	for i := 0; i < len(pattern); i++ {
		switch pattern[i] {
		case '_':
			return "", false
		case '%':
			if i != len(pattern)-1 {
				return "", false
			}
			return pattern[:i], true
		}
	}
	return "", false
}
