package plan

import (
	"strings"
	"testing"

	"monetlite/internal/mtypes"
	"monetlite/internal/sqlparse"
	"monetlite/internal/storage"
)

// testCatalog is a static catalog for binder tests.
type testCatalog struct {
	tables map[string]*storage.TableMeta
	rows   map[string]int64
}

func (c *testCatalog) TableMeta(name string) (*storage.TableMeta, bool) {
	m, ok := c.tables[name]
	return m, ok
}

func (c *testCatalog) TableRows(name string) int64 { return c.rows[name] }

func newTestCatalog() *testCatalog {
	mk := func(name string, rows int64, cols ...storage.ColDef) (*storage.TableMeta, int64) {
		return &storage.TableMeta{Name: name, Cols: cols}, rows
	}
	c := &testCatalog{tables: map[string]*storage.TableMeta{}, rows: map[string]int64{}}
	add := func(m *storage.TableMeta, rows int64) {
		c.tables[m.Name] = m
		c.rows[m.Name] = rows
	}
	add(mk("t", 1000,
		storage.ColDef{Name: "a", Typ: mtypes.Int},
		storage.ColDef{Name: "b", Typ: mtypes.Varchar},
		storage.ColDef{Name: "c", Typ: mtypes.Decimal(15, 2)},
		storage.ColDef{Name: "d", Typ: mtypes.Date},
	))
	add(mk("u", 10,
		storage.ColDef{Name: "a", Typ: mtypes.Int},
		storage.ColDef{Name: "x", Typ: mtypes.Varchar},
	))
	add(mk("big", 1000000,
		storage.ColDef{Name: "k", Typ: mtypes.Int},
		storage.ColDef{Name: "v", Typ: mtypes.Double},
	))
	return c
}

func bindQuery(t *testing.T, src string) *BoundQuery {
	t.Helper()
	st, err := sqlparse.ParseOne(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	q, err := BindSelect(newTestCatalog(), st.(*sqlparse.SelectStmt), nil)
	if err != nil {
		t.Fatalf("bind %q: %v", src, err)
	}
	return q
}

func TestBindSimpleProjection(t *testing.T) {
	q := bindQuery(t, "SELECT a, c FROM t")
	sch := q.Plan.Schema()
	if len(sch) != 2 || sch[0].Name != "a" || sch[1].Typ.Kind != mtypes.KDecimal {
		t.Fatalf("schema: %+v", sch)
	}
}

func TestBindStar(t *testing.T) {
	q := bindQuery(t, "SELECT * FROM t")
	if len(q.Plan.Schema()) != 4 {
		t.Fatalf("star schema: %+v", q.Plan.Schema())
	}
}

func TestBindUnknownColumnAndTable(t *testing.T) {
	cat := newTestCatalog()
	st, _ := sqlparse.ParseOne("SELECT zzz FROM t")
	if _, err := BindSelect(cat, st.(*sqlparse.SelectStmt), nil); err == nil {
		t.Fatal("unknown column should fail")
	}
	st, _ = sqlparse.ParseOne("SELECT 1 FROM missing")
	if _, err := BindSelect(cat, st.(*sqlparse.SelectStmt), nil); err == nil {
		t.Fatal("unknown table should fail")
	}
	st, _ = sqlparse.ParseOne("SELECT a FROM t, u")
	if _, err := BindSelect(cat, st.(*sqlparse.SelectStmt), nil); err == nil {
		t.Fatal("ambiguous column should fail")
	}
}

func TestFilterPushdownIntoScan(t *testing.T) {
	q := bindQuery(t, "SELECT a FROM t WHERE a > 5 AND b = 'x'")
	ps := PlanString(q.Plan)
	if !strings.Contains(ps, "SCAN t") || !strings.Contains(ps, "filter=") {
		t.Fatalf("filters not pushed into scan:\n%s", ps)
	}
	// No standalone FILTER node should remain.
	if strings.Contains(ps, "\nFILTER") || strings.HasPrefix(ps, "FILTER") {
		t.Fatalf("residual filter node:\n%s", ps)
	}
}

func TestProjectionPruning(t *testing.T) {
	q := bindQuery(t, "SELECT a FROM t WHERE c > 1")
	// Scan should read only columns a (0) and c (2) — not b or d.
	var scan *Scan
	var walk func(n Node)
	walk = func(n Node) {
		if s, ok := n.(*Scan); ok {
			scan = s
		}
		for _, c := range n.Children() {
			walk(c)
		}
	}
	walk(q.Plan)
	if scan == nil {
		t.Fatal("no scan")
	}
	if len(scan.Cols) != 2 || scan.Cols[0] != 0 || scan.Cols[1] != 2 {
		t.Fatalf("pruned cols: %v", scan.Cols)
	}
}

func TestJoinOrderSmallestFirst(t *testing.T) {
	q := bindQuery(t, "SELECT u.x FROM big, t, u WHERE big.k = t.a AND t.a = u.a")
	ps := PlanString(q.Plan)
	// The greedy order should start from u (10 rows) or t (1000), never big.
	idxBig := strings.Index(ps, "SCAN big")
	idxU := strings.Index(ps, "SCAN u")
	if idxBig < 0 || idxU < 0 {
		t.Fatalf("missing scans:\n%s", ps)
	}
	if !strings.Contains(ps, "INNER JOIN") {
		t.Fatalf("no joins:\n%s", ps)
	}
	// big must be joined last: it appears as the right child of the outermost
	// join, i.e. AFTER u in the printed left-deep tree.
	if idxBig < idxU {
		t.Fatalf("big joined too early:\n%s", ps)
	}
}

func TestAggregateBinding(t *testing.T) {
	q := bindQuery(t, "SELECT b, sum(c) AS total, count(*) AS n FROM t GROUP BY b ORDER BY total DESC")
	sch := q.Plan.Schema()
	if len(sch) != 3 || sch[1].Name != "total" || sch[1].Typ.Kind != mtypes.KDecimal || sch[2].Typ.Kind != mtypes.KBigInt {
		t.Fatalf("agg schema: %+v", sch)
	}
	ps := PlanString(q.Plan)
	if !strings.Contains(ps, "AGGREGATE groups=1 aggs=2") || !strings.Contains(ps, "SORT") {
		t.Fatalf("plan:\n%s", ps)
	}
}

func TestAggregateAliasAndOrdinalGroup(t *testing.T) {
	// GROUP BY via alias.
	q := bindQuery(t, "SELECT b AS flag, count(*) FROM t GROUP BY flag")
	if q.Plan.Schema()[0].Name != "flag" {
		t.Fatal("alias group")
	}
	// GROUP BY via ordinal.
	q = bindQuery(t, "SELECT b, count(*) FROM t GROUP BY 1")
	if len(q.Plan.Schema()) != 2 {
		t.Fatal("ordinal group")
	}
	// Expression group matched structurally in the select list.
	q = bindQuery(t, "SELECT extract(year from d), sum(a) FROM t GROUP BY extract(year from d)")
	if q.Plan.Schema()[0].Typ.Kind != mtypes.KInt {
		t.Fatal("expr group")
	}
}

func TestAggregateValidation(t *testing.T) {
	cat := newTestCatalog()
	for _, bad := range []string{
		"SELECT a, sum(c) FROM t GROUP BY b", // a not grouped
		"SELECT sum(*) FROM t",
		"SELECT b, count(*) FROM t GROUP BY 9",
	} {
		st, err := sqlparse.ParseOne(bad)
		if err != nil {
			continue
		}
		if _, err := BindSelect(cat, st.(*sqlparse.SelectStmt), nil); err == nil {
			t.Errorf("bind(%q) should fail", bad)
		}
	}
}

func TestGlobalAggregate(t *testing.T) {
	q := bindQuery(t, "SELECT sum(a), avg(c) FROM t")
	sch := q.Plan.Schema()
	if len(sch) != 2 || sch[0].Typ.Kind != mtypes.KBigInt || sch[1].Typ.Kind != mtypes.KDouble {
		t.Fatalf("global agg schema: %+v", sch)
	}
}

func TestHavingBinds(t *testing.T) {
	q := bindQuery(t, "SELECT b, sum(a) FROM t GROUP BY b HAVING sum(a) > 10")
	ps := PlanString(q.Plan)
	if !strings.Contains(ps, "FILTER") {
		t.Fatalf("HAVING should become a filter over the aggregate:\n%s", ps)
	}
}

func TestExistsBecomesSemiJoin(t *testing.T) {
	q := bindQuery(t, `SELECT a FROM t WHERE EXISTS (SELECT * FROM u WHERE u.a = t.a AND u.x < t.b)`)
	ps := PlanString(q.Plan)
	if !strings.Contains(ps, "SEMI JOIN") {
		t.Fatalf("expected semi join:\n%s", ps)
	}
	if !strings.Contains(ps, "residual=") {
		t.Fatalf("expected residual for non-equi correlation:\n%s", ps)
	}
	q = bindQuery(t, `SELECT a FROM t WHERE NOT EXISTS (SELECT * FROM u WHERE u.a = t.a)`)
	if !strings.Contains(PlanString(q.Plan), "ANTI JOIN") {
		t.Fatal("expected anti join")
	}
}

func TestInSubqueryBecomesSemiJoin(t *testing.T) {
	q := bindQuery(t, `SELECT a FROM t WHERE a IN (SELECT a FROM u)`)
	if !strings.Contains(PlanString(q.Plan), "SEMI JOIN") {
		t.Fatal("IN subquery should be a semi join")
	}
	q = bindQuery(t, `SELECT a FROM t WHERE a NOT IN (SELECT a FROM u)`)
	if !strings.Contains(PlanString(q.Plan), "ANTI JOIN") {
		t.Fatal("NOT IN subquery should be an anti join")
	}
}

func TestCorrelatedScalarSubquery(t *testing.T) {
	// The Q2 pattern: equality with a correlated MIN.
	q := bindQuery(t, `SELECT a FROM t WHERE c = (SELECT min(c) FROM t t2 WHERE t2.a = t.a)`)
	ps := PlanString(q.Plan)
	if !strings.Contains(ps, "AGGREGATE") || !strings.Contains(ps, "INNER JOIN") {
		t.Fatalf("expected grouped-join decorrelation:\n%s", ps)
	}
	// Output schema must stay the outer projection.
	if len(q.Plan.Schema()) != 1 || q.Plan.Schema()[0].Name != "a" {
		t.Fatalf("schema: %+v", q.Plan.Schema())
	}
}

func TestUncorrelatedScalarSubquery(t *testing.T) {
	q := bindQuery(t, `SELECT a FROM t WHERE a > (SELECT max(a) FROM u)`)
	found := false
	var walk func(n Node)
	walk = func(n Node) {
		switch x := n.(type) {
		case *Scan:
			for _, f := range x.Filters {
				WalkExpr(f, func(e Expr) bool {
					if _, ok := e.(*SubplanExpr); ok {
						found = true
					}
					return true
				})
			}
		case *Filter:
			WalkExpr(x.Pred, func(e Expr) bool {
				if _, ok := e.(*SubplanExpr); ok {
					found = true
				}
				return true
			})
		}
		for _, c := range n.Children() {
			walk(c)
		}
	}
	walk(q.Plan)
	if !found {
		t.Fatalf("expected subplan expr:\n%s", PlanString(q.Plan))
	}
}

func TestDerivedTable(t *testing.T) {
	q := bindQuery(t, `SELECT y FROM (SELECT a AS y FROM t WHERE a > 1) AS sub WHERE y < 10`)
	sch := q.Plan.Schema()
	if len(sch) != 1 || sch[0].Name != "y" {
		t.Fatalf("derived schema: %+v", sch)
	}
}

func TestExplicitJoinOn(t *testing.T) {
	q := bindQuery(t, `SELECT t.a FROM t JOIN u ON t.a = u.a WHERE u.x = 'q'`)
	ps := PlanString(q.Plan)
	if !strings.Contains(ps, "INNER JOIN") {
		t.Fatalf("plan:\n%s", ps)
	}
}

func TestOrderByVariants(t *testing.T) {
	// ordinal
	bindQuery(t, "SELECT a, b FROM t ORDER BY 2 DESC")
	// alias
	bindQuery(t, "SELECT a AS z FROM t ORDER BY z")
	// hidden column (not in select list)
	q := bindQuery(t, "SELECT a FROM t ORDER BY c")
	if len(q.Plan.Schema()) < 1 {
		t.Fatal("schema")
	}
}

func TestDistinct(t *testing.T) {
	q := bindQuery(t, "SELECT DISTINCT b FROM t")
	if !strings.Contains(PlanString(q.Plan), "DISTINCT") {
		t.Fatal("distinct node missing")
	}
}

func TestConstantFolding(t *testing.T) {
	q := bindQuery(t, "SELECT a FROM t WHERE d <= date '1998-12-01' - interval '90' day")
	ps := PlanString(q.Plan)
	if !strings.Contains(ps, "1998-09-02") {
		t.Fatalf("interval not folded:\n%s", ps)
	}
	q = bindQuery(t, "SELECT 1+2*3 FROM t")
	proj := q.Plan.(*Project)
	if c, ok := proj.Exprs[0].(*Const); !ok || c.Val.I != 7 {
		t.Fatalf("arith not folded: %s", ExprString(proj.Exprs[0]))
	}
}

func TestBindInsertValues(t *testing.T) {
	st, _ := sqlparse.ParseOne("INSERT INTO t (a, b) VALUES (1, 'x'), (2, NULL)")
	ins, err := BindInsert(newTestCatalog(), st.(*sqlparse.InsertStmt), nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(ins.Values) != 4 || ins.Values[0].Len() != 2 {
		t.Fatalf("values: %d cols", len(ins.Values))
	}
	if ins.Values[0].I32[1] != 2 || !ins.Values[1].IsNull(1) || !ins.Values[2].IsNull(0) {
		t.Fatal("insert defaults/nulls wrong")
	}
	// Coercion: int literal into decimal column.
	st, _ = sqlparse.ParseOne("INSERT INTO t (c) VALUES (5)")
	ins, err = BindInsert(newTestCatalog(), st.(*sqlparse.InsertStmt), nil)
	if err != nil {
		t.Fatal(err)
	}
	if ins.Values[2].I64[0] != 500 {
		t.Fatalf("decimal coercion: %d", ins.Values[2].I64[0])
	}
}

func TestBindDeleteUpdate(t *testing.T) {
	st, _ := sqlparse.ParseOne("DELETE FROM t WHERE a = 3")
	del, err := BindDelete(newTestCatalog(), st.(*sqlparse.DeleteStmt), nil)
	if err != nil || del.Pred == nil {
		t.Fatal(err)
	}
	st, _ = sqlparse.ParseOne("UPDATE t SET a = a + 1 WHERE b = 'x'")
	up, err := BindUpdate(newTestCatalog(), st.(*sqlparse.UpdateStmt), nil)
	if err != nil || len(up.SetCols) != 1 || up.SetCols[0] != 0 {
		t.Fatalf("update: %+v err %v", up, err)
	}
}

func TestBindParams(t *testing.T) {
	st, _ := sqlparse.ParseOne("SELECT a FROM t WHERE a = ?")
	q, err := BindSelect(newTestCatalog(), st.(*sqlparse.SelectStmt), []mtypes.Value{mtypes.NewInt(mtypes.Int, 7)})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(PlanString(q.Plan), "7") {
		t.Fatal("param not substituted")
	}
	if _, err := BindSelect(newTestCatalog(), st.(*sqlparse.SelectStmt), nil); err == nil {
		t.Fatal("missing param should fail")
	}
}

func TestMatchLike(t *testing.T) {
	cases := []struct {
		s, p string
		want bool
	}{
		{"hello", "hello", true},
		{"hello", "h%", true},
		{"hello", "%llo", true},
		{"hello", "%ell%", true},
		{"hello", "h_llo", true},
		{"hello", "h__lo", true},
		{"hello", "h_lo", false},
		{"hello", "%", true},
		{"", "%", true},
		{"", "_", false},
		{"BRASS STEEL", "%BRASS", false},
		{"LARGE BRASS", "%BRASS", true},
		{"abcabc", "%abc", true},
		{"promo burnished", "promo%", true},
		{"forest green metallic", "%green%", true},
		{"x", "", false},
		{"", "", true},
	}
	for _, c := range cases {
		if got := MatchLike(c.s, c.p); got != c.want {
			t.Errorf("MatchLike(%q, %q) = %v", c.s, c.p, got)
		}
	}
}

func TestLikePrefix(t *testing.T) {
	if p, ok := LikePrefix("abc%"); !ok || p != "abc" {
		t.Fatal("prefix pattern")
	}
	for _, notPrefix := range []string{"%abc", "a%c", "a_c%", "abc"} {
		if _, ok := LikePrefix(notPrefix); ok {
			t.Errorf("LikePrefix(%q) should be false", notPrefix)
		}
	}
}

func TestRowEvalBasics(t *testing.T) {
	// (a + 1) * 2 where a = 5  ->  12
	e := &BinOp{Kind: BinArith, Arith: 2, Typ: mtypes.Int,
		L: &BinOp{Kind: BinArith, Arith: 0, Typ: mtypes.Int,
			L: &ColRef{Slot: 0, Typ: mtypes.Int}, R: &Const{Val: mtypes.NewInt(mtypes.Int, 1)}},
		R: &Const{Val: mtypes.NewInt(mtypes.Int, 2)}}
	v, err := EvalRow(e, &EvalCtx{Row: []mtypes.Value{mtypes.NewInt(mtypes.Int, 5)}})
	if err != nil || v.I != 12 {
		t.Fatalf("eval: %v %v", v, err)
	}
	// CASE evaluation
	ce := &CaseExpr{Typ: mtypes.Int, Whens: []WhenClause{{
		Cond:   &BinOp{Kind: BinCmp, Cmp: 4, Typ: mtypes.Bool, L: &ColRef{Slot: 0, Typ: mtypes.Int}, R: &Const{Val: mtypes.NewInt(mtypes.Int, 3)}},
		Result: &Const{Val: mtypes.NewInt(mtypes.Int, 1)},
	}}}
	v, _ = EvalRow(ce, &EvalCtx{Row: []mtypes.Value{mtypes.NewInt(mtypes.Int, 5)}})
	if v.I != 1 {
		t.Fatal("case then")
	}
	v, _ = EvalRow(ce, &EvalCtx{Row: []mtypes.Value{mtypes.NewInt(mtypes.Int, 2)}})
	if !v.Null {
		t.Fatal("case without else should be NULL")
	}
}

// ORDER BY … LIMIT must fuse into a single TopN node — including the shape
// with hidden sort columns, where the binder interposes a strip-Project
// between Limit and Sort. OFFSET-only and un-sorted LIMITs must not fuse.
func TestTopNFusion(t *testing.T) {
	q := bindQuery(t, "SELECT a, b FROM t ORDER BY a DESC LIMIT 7")
	ps := PlanString(q.Plan)
	if !strings.Contains(ps, "TOPN 7 OFFSET 0 keys=1") {
		t.Fatalf("Limit(Sort) did not fuse to TopN:\n%s", ps)
	}
	if strings.Contains(ps, "SORT") || strings.Contains(ps, "LIMIT") {
		t.Fatalf("fused plan still has SORT/LIMIT:\n%s", ps)
	}

	// Hidden sort column: ORDER BY a column not in the projection puts a
	// strip-Project between Limit and Sort; the fusion pushes through it.
	q = bindQuery(t, "SELECT b FROM t ORDER BY a LIMIT 3 OFFSET 2")
	ps = PlanString(q.Plan)
	if !strings.Contains(ps, "TOPN 3 OFFSET 2") {
		t.Fatalf("Limit(Project(Sort)) did not fuse:\n%s", ps)
	}

	// OFFSET without LIMIT: a TopN heap would hold the whole input — no fusion.
	q = bindQuery(t, "SELECT a FROM t ORDER BY a OFFSET 4")
	ps = PlanString(q.Plan)
	if strings.Contains(ps, "TOPN") || !strings.Contains(ps, "SORT") {
		t.Fatalf("OFFSET-only query should keep Sort+Limit:\n%s", ps)
	}

	// LIMIT without ORDER BY: nothing to fuse.
	q = bindQuery(t, "SELECT a FROM t LIMIT 5")
	ps = PlanString(q.Plan)
	if strings.Contains(ps, "TOPN") {
		t.Fatalf("unsorted LIMIT fused:\n%s", ps)
	}
}

// Pairs of one-sided range conjuncts over the same column must fuse into a
// single BetweenExpr (half-open via LoExcl/HiExcl) so the executor — and the
// imprints — see both bounds in one probe. Same-direction pairs, pairs over
// different columns, and non-constant bounds must not fuse.
func TestRangeConjunctFusion(t *testing.T) {
	q := bindQuery(t, "SELECT a FROM t WHERE a >= 5 AND a < 10")
	ps := PlanString(q.Plan)
	if !strings.Contains(ps, "RANGE >= 5, < 10") {
		t.Fatalf(">=/< pair did not fuse:\n%s", ps)
	}
	if strings.Count(ps, "filter=") != 1 {
		t.Fatalf("fused scan should carry one filter:\n%s", ps)
	}

	// Constant on the left flips; strict lower + inclusive upper.
	q = bindQuery(t, "SELECT a FROM t WHERE 5 < a AND a <= 10")
	ps = PlanString(q.Plan)
	if !strings.Contains(ps, "RANGE > 5, <= 10") {
		t.Fatalf("flipped </<= pair did not fuse:\n%s", ps)
	}

	// Both inclusive: plain BETWEEN (the zero-value flags).
	q = bindQuery(t, "SELECT a FROM t WHERE a >= 5 AND a <= 10")
	ps = PlanString(q.Plan)
	if !strings.Contains(ps, "BETWEEN 5 AND 10") {
		t.Fatalf(">=/<= pair did not fuse to BETWEEN:\n%s", ps)
	}

	// Same-direction bounds stay separate conjuncts.
	q = bindQuery(t, "SELECT a FROM t WHERE a >= 5 AND a > 10")
	ps = PlanString(q.Plan)
	if strings.Contains(ps, "RANGE") || strings.Contains(ps, "BETWEEN") {
		t.Fatalf("same-direction bounds fused:\n%s", ps)
	}

	// Equality and inequality conjuncts are not range bounds: fusing
	// `a >= 5 AND a <> 7` into BETWEEN 5 AND 7 would change results.
	q = bindQuery(t, "SELECT a FROM t WHERE a >= 5 AND a <> 7")
	ps = PlanString(q.Plan)
	if strings.Contains(ps, "RANGE") || strings.Contains(ps, "BETWEEN") {
		t.Fatalf("inequality conjunct fused as a range bound:\n%s", ps)
	}
	q = bindQuery(t, "SELECT a FROM t WHERE a >= 5 AND a = 7")
	ps = PlanString(q.Plan)
	if strings.Contains(ps, "RANGE") || strings.Contains(ps, "BETWEEN") {
		t.Fatalf("equality conjunct fused as a range bound:\n%s", ps)
	}

	// Different columns stay separate.
	q = bindQuery(t, "SELECT a FROM t WHERE a >= 5 AND c < 10")
	ps = PlanString(q.Plan)
	if strings.Contains(ps, "RANGE") {
		t.Fatalf("bounds on different columns fused:\n%s", ps)
	}

	// A third bound on the same column pairs once; the leftover stays.
	q = bindQuery(t, "SELECT a FROM t WHERE a >= 5 AND a < 10 AND a < 8")
	ps = PlanString(q.Plan)
	if !strings.Contains(ps, "RANGE >= 5, < 10") || !strings.Contains(ps, "(#0(a) < 8)") {
		t.Fatalf("triple bound mishandled:\n%s", ps)
	}
}

// The row evaluator (the rowstore engine's oracle) must honor the half-open
// flags the fusion pass introduces, with SQL three-valued NULL semantics.
func TestRowEvalHalfOpenRange(t *testing.T) {
	rng := &BetweenExpr{
		E:      &ColRef{Slot: 0, Typ: mtypes.Int},
		Lo:     &Const{Val: mtypes.NewInt(mtypes.Int, 5)},
		Hi:     &Const{Val: mtypes.NewInt(mtypes.Int, 10)},
		LoExcl: false, HiExcl: true, // 5 <= a < 10
	}
	cases := []struct {
		in   int64
		want bool
	}{{4, false}, {5, true}, {9, true}, {10, false}}
	for _, c := range cases {
		v, err := EvalRow(rng, &EvalCtx{Row: []mtypes.Value{mtypes.NewInt(mtypes.Int, c.in)}})
		if err != nil {
			t.Fatal(err)
		}
		if v.Null || (v.I == 1) != c.want {
			t.Fatalf("a=%d: got %v, want %v", c.in, v, c.want)
		}
	}
	v, err := EvalRow(rng, &EvalCtx{Row: []mtypes.Value{mtypes.NullValue(mtypes.Int)}})
	if err != nil || !v.Null {
		t.Fatalf("NULL input must yield NULL, got %v (%v)", v, err)
	}
}
