package plan

import (
	"math"
	"sort"

	"monetlite/internal/mtypes"
	"monetlite/internal/storage"
	"monetlite/internal/vec"
)

// StatsProvider is the optional statistics side of Catalog: catalogs that can
// serve per-column statistics (row/null counts, ndv, min/max) implement it,
// and the optimizer type-asserts for it. Catalogs without stats — or snapshots
// with uncommitted local changes — simply don't provide them, and estimation
// falls back to fixed heuristic selectivities.
type StatsProvider interface {
	ColStats(table string, ci int) (storage.ColStats, bool)
}

// Heuristic fallback selectivities, used whenever column statistics are
// unavailable or a predicate shape is not recognized.
const (
	selFallbackEq      = 0.10
	selFallbackRange   = 1.0 / 3
	selFallbackLikePre = 0.05
	selFallbackLike    = 0.25
	selFallbackGeneric = 0.25
	selFloor           = 1e-5
)

// estimator carries the catalog (and its optional stats side) through one
// cardinality-estimation pass. Subtree estimates are memoized by node
// pointer, so repeated card() calls over a shared tree stay linear.
type estimator struct {
	cat  Catalog
	sp   StatsProvider // nil when cat has no stats
	memo map[Node]float64
}

func newEstimator(cat Catalog) *estimator {
	e := &estimator{cat: cat, memo: make(map[Node]float64)}
	if sp, ok := cat.(StatsProvider); ok {
		e.sp = sp
	}
	return e
}

// annotateEst stamps the optimizer's cardinality estimate on every Scan,
// Filter, Join and Aggregate in the final plan. The executor pairs these
// with actual row counts in the MAL trace (optimizer.cardinality), which is
// the raw material for plan-quality tests.
func annotateEst(cat Catalog, n Node) {
	est := newEstimator(cat)
	var walk func(Node)
	walk = func(n Node) {
		for _, c := range n.Children() {
			walk(c)
		}
		switch x := n.(type) {
		case *Scan:
			x.Est = estInt(est.card(x))
		case *Filter:
			x.Est = estInt(est.card(x))
		case *Join:
			x.Est = estInt(est.card(x))
		case *Aggregate:
			x.Est = estInt(est.card(x))
		}
	}
	walk(n)
}

// estInt rounds an estimate for display: at least 1, so an annotated node is
// distinguishable from an unannotated one (Est == 0).
func estInt(card float64) int64 {
	v := int64(math.Ceil(card))
	if v < 1 {
		v = 1
	}
	return v
}

// EstimateCard estimates the output row count of a plan subtree. It is the
// single cardinality model shared by join ordering, the Est annotations on
// plan nodes, and the estimator tests; estimates are always ≥ 0 and a scan's
// estimate never exceeds the table's row count.
func EstimateCard(cat Catalog, n Node) float64 {
	return newEstimator(cat).card(n)
}

func (est *estimator) card(n Node) float64 {
	if c, ok := est.memo[n]; ok {
		return c
	}
	c := est.cardUncached(n)
	est.memo[n] = c
	return c
}

func (est *estimator) cardUncached(n Node) float64 {
	switch x := n.(type) {
	case *Scan:
		rows := float64(est.cat.TableRows(x.Table))
		if len(x.Filters) == 0 {
			return rows
		}
		var sels []float64
		for _, f := range x.Filters {
			for _, c := range splitBoundConjuncts(f) {
				sels = append(sels, est.selOne(x, c))
			}
		}
		return clampCard(rows*dampedProduct(sels), rows)
	case *Filter:
		in := est.card(x.Input)
		var sels []float64
		for _, c := range splitBoundConjuncts(x.Pred) {
			sels = append(sels, est.selOne(x.Input, c))
		}
		return clampCard(in*dampedProduct(sels), in)
	case *Project:
		return est.card(x.Input)
	case *Join:
		return est.joinCard(x)
	case *Aggregate:
		in := est.card(x.Input)
		if len(x.GroupBy) == 0 {
			return 1
		}
		groups := 1.0
		known := true
		for _, g := range x.GroupBy {
			cr, ok := g.(*ColRef)
			if !ok {
				known = false
				break
			}
			st, ok := est.statsForSlot(x.Input, cr.Slot)
			if !ok || st.NDV <= 0 {
				known = false
				break
			}
			groups *= float64(st.NDV)
		}
		if !known {
			groups = in / 10
		}
		return clampCard(groups, in)
	case *Distinct:
		return est.card(x.Input) / 2
	case *Sort:
		return est.card(x.Input)
	case *Window:
		return est.card(x.Input)
	case *Limit:
		return math.Min(est.card(x.Input), float64(x.N))
	case *TopN:
		return math.Min(est.card(x.Input), float64(x.N))
	}
	if ch := n.Children(); len(ch) == 1 {
		return est.card(ch[0])
	}
	return 1
}

func (est *estimator) joinCard(x *Join) float64 {
	l := est.card(x.Left)
	r := est.card(x.Right)
	switch x.Kind {
	case JoinSemi, JoinAnti:
		frac := 0.5
		if len(x.EquiL) > 0 {
			if ndvL, okL := est.exprNDV(x.Left, x.EquiL[0]); okL {
				if ndvR, okR := est.exprNDV(x.Right, x.EquiR[0]); okR && ndvL > 0 {
					frac = math.Min(1, float64(ndvR)/float64(ndvL))
				}
			}
		}
		if x.Kind == JoinAnti {
			frac = 1 - frac
		}
		return clampCard(l*frac, l)
	}
	// Inner/left: start from the cross product, apply one selectivity per
	// equi pair (damped — composite keys are correlated) plus the residual.
	var sels []float64
	for i := range x.EquiL {
		sels = append(sels, est.equiPairSel(x.Left, x.Right, x.EquiL[i], x.EquiR[i], l, r))
	}
	if x.Residual != nil {
		for range splitBoundConjuncts(x.Residual) {
			sels = append(sels, selFallbackGeneric)
		}
	}
	out := l * r * dampedProduct(sels)
	if x.Kind == JoinLeft && out < l {
		out = l // left join preserves every left row
	}
	if out < 0 {
		out = 0
	}
	return out
}

// equiPairSel estimates the selectivity of one equi-join pair: 1/max(ndv)
// when both sides' distinct counts are known, else the primary-key/foreign-key
// default 1/max(rows) (which makes the join's output min(l, r)).
func (est *estimator) equiPairSel(left, right Node, el, er Expr, l, r float64) float64 {
	ndvL, okL := est.exprNDV(left, el)
	ndvR, okR := est.exprNDV(right, er)
	if okL && okR {
		m := ndvL
		if ndvR > m {
			m = ndvR
		}
		if m > 0 {
			return 1 / float64(m)
		}
	}
	m := math.Max(l, r)
	if m < 1 {
		m = 1
	}
	return 1 / m
}

// exprNDV returns the distinct count of a join-key expression when it is a
// plain column reference with statistics.
func (est *estimator) exprNDV(input Node, e Expr) (int64, bool) {
	cr, ok := e.(*ColRef)
	if !ok {
		return 0, false
	}
	st, ok := est.statsForSlot(input, cr.Slot)
	if !ok || st.NDV <= 0 {
		return 0, false
	}
	return st.NDV, true
}

// statsForSlot traces an output slot of a plan subtree back to the stored
// column that produced it (through filters, column-preserving projections,
// joins and group-by keys) and returns that column's statistics.
func (est *estimator) statsForSlot(n Node, slot int) (storage.ColStats, bool) {
	if est.sp == nil {
		return storage.ColStats{}, false
	}
	table, ci, ok := slotOrigin(n, slot)
	if !ok {
		return storage.ColStats{}, false
	}
	return est.sp.ColStats(table, ci)
}

func slotOrigin(n Node, slot int) (string, int, bool) {
	switch x := n.(type) {
	case *Scan:
		if slot >= 0 && slot < len(x.Cols) {
			return x.Table, x.Cols[slot], true
		}
	case *Filter:
		return slotOrigin(x.Input, slot)
	case *Project:
		if slot >= 0 && slot < len(x.Exprs) {
			if cr, ok := x.Exprs[slot].(*ColRef); ok {
				return slotOrigin(x.Input, cr.Slot)
			}
		}
	case *Join:
		if x.Kind == JoinSemi || x.Kind == JoinAnti {
			return slotOrigin(x.Left, slot)
		}
		nl := len(x.Left.Schema())
		if slot < nl {
			return slotOrigin(x.Left, slot)
		}
		return slotOrigin(x.Right, slot-nl)
	case *Aggregate:
		if slot >= 0 && slot < len(x.GroupBy) {
			if cr, ok := x.GroupBy[slot].(*ColRef); ok {
				return slotOrigin(x.Input, cr.Slot)
			}
		}
	case *Sort:
		return slotOrigin(x.Input, slot)
	case *Limit:
		return slotOrigin(x.Input, slot)
	case *TopN:
		return slotOrigin(x.Input, slot)
	case *Distinct:
		return slotOrigin(x.Input, slot)
	case *Window:
		if slot < len(x.Input.Schema()) {
			return slotOrigin(x.Input, slot)
		}
	}
	return "", 0, false
}

// ---------------------------------------------------------------------------
// Predicate selectivity.
// ---------------------------------------------------------------------------

// selOne estimates the selectivity of a single conjunct over input's schema.
// The result is always in [selFloor, 1].
func (est *estimator) selOne(input Node, e Expr) float64 {
	return clampSel(est.selRaw(input, e))
}

func (est *estimator) selRaw(input Node, e Expr) float64 {
	switch x := e.(type) {
	case *Const:
		if x.Val.Typ.Kind == mtypes.KBool && !x.Val.Null {
			if x.Val.I != 0 {
				return 1
			}
			return 0
		}
	case *NotExpr:
		return 1 - est.selOne(input, x.E)
	case *BinOp:
		switch x.Kind {
		case BinAnd:
			var sels []float64
			for _, c := range splitBoundConjuncts(x) {
				sels = append(sels, est.selOne(input, c))
			}
			return dampedProduct(sels)
		case BinOr:
			s1 := est.selOne(input, x.L)
			s2 := est.selOne(input, x.R)
			return s1 + s2 - s1*s2
		case BinCmp:
			return est.selCmp(input, x)
		}
	case *BetweenExpr:
		s := est.selRange(input, x.E, constOf(x.Lo), constOf(x.Hi))
		if x.Not {
			return 1 - s
		}
		return s
	case *InListExpr:
		s := selFallbackEq * float64(len(x.Vals))
		if st, ok := est.colStatsOf(input, x.E); ok && st.NDV > 0 {
			s = float64(len(x.Vals)) / float64(st.NDV)
		}
		if s > 1 {
			s = 1
		}
		if x.Not {
			return 1 - s
		}
		return s
	case *IsNullExpr:
		s := 0.02
		if st, ok := est.colStatsOf(input, x.E); ok && st.Rows > 0 {
			s = float64(st.NullCount) / float64(st.Rows)
		}
		if x.Not {
			return 1 - s
		}
		return s
	case *LikeExpr:
		s := selFallbackLike
		if prefix := likePrefix(x.Pattern); prefix != "" {
			s = selFallbackLikePre
		}
		if x.Not {
			return 1 - s
		}
		return s
	}
	return selFallbackGeneric
}

// selCmp estimates `lhs <op> rhs` where one side traces to a stored column
// and the other is a constant.
func (est *estimator) selCmp(input Node, x *BinOp) float64 {
	col, c, op, ok := cmpColConst(x)
	if !ok {
		return selFallbackGeneric
	}
	st, haveStats := est.colStatsOf(input, col)
	switch op {
	case vec.CmpEq:
		if haveStats {
			if outsideRange(st, c) {
				return selFloor
			}
			if st.NDV > 0 {
				return 1 / float64(st.NDV)
			}
		}
		return selFallbackEq
	case vec.CmpNe:
		if haveStats && st.NDV > 0 {
			return 1 - 1/float64(st.NDV)
		}
		return 1 - selFallbackEq
	case vec.CmpLt, vec.CmpLe:
		return est.rangeFraction(st, haveStats, nil, &c)
	case vec.CmpGt, vec.CmpGe:
		return est.rangeFraction(st, haveStats, &c, nil)
	}
	return selFallbackGeneric
}

// selRange estimates `e BETWEEN lo AND hi`.
func (est *estimator) selRange(input Node, e Expr, lo, hi *mtypes.Value) float64 {
	st, haveStats := est.colStatsOf(input, e)
	return est.rangeFraction(st, haveStats, lo, hi)
}

// rangeFraction interpolates the fraction of a column's [min, max] domain
// covered by [lo, hi] (either bound may be nil = unbounded on that side).
func (est *estimator) rangeFraction(st storage.ColStats, haveStats bool, lo, hi *mtypes.Value) float64 {
	if !haveStats || !st.HasRange || st.Min.Typ.Kind == mtypes.KVarchar {
		return selFallbackRange
	}
	mn := st.Min.AsFloat()
	mx := st.Max.AsFloat()
	if math.IsNaN(mn) || math.IsNaN(mx) {
		return selFallbackRange
	}
	width := mx - mn
	if width <= 0 {
		// Single-valued domain: either the bound covers it or it doesn't.
		v := mn
		if lo != nil && !(*lo).Null && (*lo).AsFloat() > v {
			return selFloor
		}
		if hi != nil && !(*hi).Null && (*hi).AsFloat() < v {
			return selFloor
		}
		return 1
	}
	loV, hiV := mn, mx
	if lo != nil && !(*lo).Null {
		loV = math.Max(loV, (*lo).AsFloat())
	}
	if hi != nil && !(*hi).Null {
		hiV = math.Min(hiV, (*hi).AsFloat())
	}
	if hiV < loV {
		return selFloor
	}
	frac := (hiV - loV) / width
	// A non-empty range touches at least one value group: pure interpolation
	// would estimate `c <= min(c)` as zero even though a full group matches.
	if st.NDV > 0 {
		frac = math.Max(frac, 1/float64(st.NDV))
	}
	return frac
}

// colStatsOf traces a (possibly cast-wrapped) column-reference expression to
// its stored column's statistics.
func (est *estimator) colStatsOf(input Node, e Expr) (storage.ColStats, bool) {
	for {
		if c, ok := e.(*CastExpr); ok {
			e = c.E
			continue
		}
		break
	}
	cr, ok := e.(*ColRef)
	if !ok {
		return storage.ColStats{}, false
	}
	return est.statsForSlot(input, cr.Slot)
}

// cmpColConst matches `col <op> const` (either orientation, the op flipped
// for the reversed form).
func cmpColConst(x *BinOp) (col Expr, c mtypes.Value, op vec.CmpOp, ok bool) {
	if cv := constOf(x.R); cv != nil && isColExpr(x.L) {
		return x.L, *cv, x.Cmp, true
	}
	if cv := constOf(x.L); cv != nil && isColExpr(x.R) {
		return x.R, *cv, flipCmp(x.Cmp), true
	}
	return nil, mtypes.Value{}, 0, false
}

func isColExpr(e Expr) bool {
	for {
		if c, ok := e.(*CastExpr); ok {
			e = c.E
			continue
		}
		break
	}
	_, ok := e.(*ColRef)
	return ok
}

func constOf(e Expr) *mtypes.Value {
	if e == nil {
		return nil
	}
	if c, ok := e.(*Const); ok {
		return &c.Val
	}
	if IsConst(e) {
		if v, err := EvalRow(e, &EvalCtx{}); err == nil {
			return &v
		}
	}
	return nil
}

func flipCmp(op vec.CmpOp) vec.CmpOp {
	switch op {
	case vec.CmpLt:
		return vec.CmpGt
	case vec.CmpLe:
		return vec.CmpGe
	case vec.CmpGt:
		return vec.CmpLt
	case vec.CmpGe:
		return vec.CmpLe
	}
	return op
}

// outsideRange reports whether an equality constant falls outside the
// column's [min, max] domain (comparable kinds only).
func outsideRange(st storage.ColStats, c mtypes.Value) bool {
	if !st.HasRange || c.Null {
		return false
	}
	if st.Min.Typ.Kind == mtypes.KVarchar {
		if c.Typ.Kind != mtypes.KVarchar {
			return false
		}
		return c.S < st.Min.S || c.S > st.Max.S
	}
	v := c.AsFloat()
	if math.IsNaN(v) {
		return false
	}
	return v < st.Min.AsFloat() || v > st.Max.AsFloat()
}

// likePrefix returns the literal prefix of a LIKE pattern (up to the first
// wildcard); "" when the pattern starts with a wildcard.
func likePrefix(pat string) string {
	for i := 0; i < len(pat); i++ {
		if pat[i] == '%' || pat[i] == '_' {
			return pat[:i]
		}
	}
	return pat
}

// dampedProduct combines conjunct selectivities with exponential backoff
// (s0 · s1^1/2 · s2^1/4 · …, most selective first) — the standard correction
// for the independence assumption overestimating how much correlated
// predicates filter. Adding a conjunct never increases the result.
func dampedProduct(sels []float64) float64 {
	if len(sels) == 0 {
		return 1
	}
	sorted := make([]float64, len(sels))
	copy(sorted, sels)
	sort.Float64s(sorted)
	out := 1.0
	exp := 1.0
	for _, s := range sorted {
		out *= math.Pow(s, exp)
		exp /= 2
	}
	return out
}

func clampSel(s float64) float64 {
	if math.IsNaN(s) || s < selFloor {
		return selFloor
	}
	if s > 1 {
		return 1
	}
	return s
}

func clampCard(card, upper float64) float64 {
	if math.IsNaN(card) || card < 0 {
		return 0
	}
	if card > upper {
		return upper
	}
	return card
}
