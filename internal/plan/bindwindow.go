package plan

import (
	"fmt"
	"reflect"

	"monetlite/internal/mtypes"
	"monetlite/internal/sqlparse"
)

// Window-function binding. Window calls are collected while the select items
// are bound (in both the plain and the post-aggregation context): each
// fn(args) OVER (spec) becomes a windowRef placeholder, and calls sharing one
// (PARTITION BY, ORDER BY) specification are grouped so they share a single
// Window node — and therefore a single physical sort. After every item is
// bound (and the aggregate schema is final), attachWindows stacks one Window
// node per distinct spec over the plan — after projection resolution, like
// the hidden-sort-column path — and the placeholders are rewritten into
// ColRefs over the appended window columns.

// windowCtx is the per-SELECT collection state; it is non-nil only while the
// select items are being bound, which is what rejects window functions in
// WHERE, GROUP BY, HAVING and ORDER BY.
type windowCtx struct {
	// bind resolves an AST expression in the current context: the plain
	// scope binder, or postAggBinder.rebind under aggregation.
	bind   func(sqlparse.Expr) (Expr, error)
	groups []*windowGroup
	// binding guards against nested OVER: while one call's arguments and
	// spec are being bound, an inner window call is a clean error — a
	// windowRef leaking into a Window node's expressions would never be
	// resolved.
	binding bool
}

// windowGroup is one shared window specification plus its deduplicated calls.
type windowGroup struct {
	partitionBy []Expr
	orderBy     []SortSpec
	calls       []WindowCall
}

// windowRef marks a bound window call inside a projection expression until
// attachWindows assigns output slots; it never survives into the final plan.
type windowRef struct {
	group, call int
	typ         mtypes.Type
}

// Type returns the window call's result type.
func (e *windowRef) Type() mtypes.Type { return e.typ }

var windowFuncs = map[string]WinFunc{
	"row_number": WinRowNumber, "rank": WinRank, "dense_rank": WinDenseRank,
	"lag": WinLag, "lead": WinLead,
	"sum": WinSum, "count": WinCount, "min": WinMin, "max": WinMax, "avg": WinAvg,
}

// isRankFamily reports whether f is ordering-derived (no argument, no frame).
func isRankFamily(f WinFunc) bool {
	return f == WinRowNumber || f == WinRank || f == WinDenseRank
}

// bindWindowCall binds one fn(args) OVER (spec) call, deduplicating both the
// specification (same-spec calls share one Window node and its sort) and the
// call itself.
func (b *binder) bindWindowCall(fc *sqlparse.FuncCall) (Expr, error) {
	if b.win == nil || b.win.bind == nil {
		return nil, fmt.Errorf("plan: window function %q is only allowed in the SELECT list", fc.Name)
	}
	if b.win.binding {
		return nil, fmt.Errorf("plan: window functions cannot be nested")
	}
	b.win.binding = true
	defer func() { b.win.binding = false }()
	fn, ok := windowFuncs[fc.Name]
	if !ok {
		return nil, fmt.Errorf("plan: %q is not a window function", fc.Name)
	}
	if fc.Distinct {
		return nil, fmt.Errorf("plan: DISTINCT is not supported in window aggregates")
	}
	call := WindowCall{Func: fn, Name: fc.Name}
	switch {
	case isRankFamily(fn):
		if len(fc.Args) != 0 || fc.Star {
			return nil, fmt.Errorf("plan: %s takes no arguments", fc.Name)
		}
		if fc.Over.Frame != nil {
			return nil, fmt.Errorf("plan: %s does not accept a frame clause", fc.Name)
		}
	case fn == WinLag || fn == WinLead:
		if len(fc.Args) < 1 || len(fc.Args) > 3 || fc.Star {
			return nil, fmt.Errorf("plan: %s takes 1 to 3 arguments", fc.Name)
		}
		if fc.Over.Frame != nil {
			return nil, fmt.Errorf("plan: %s does not accept a frame clause", fc.Name)
		}
		arg, err := b.win.bind(fc.Args[0])
		if err != nil {
			return nil, err
		}
		call.Arg = arg
		call.Offset = 1
		if len(fc.Args) >= 2 {
			off, err := b.win.bind(fc.Args[1])
			if err != nil {
				return nil, err
			}
			c, isConst := FoldConst(off).(*Const)
			if !isConst || c.Val.Null || !c.Val.Typ.IsInteger() || c.Val.I < 0 {
				return nil, fmt.Errorf("plan: %s offset must be a non-negative integer constant", fc.Name)
			}
			call.Offset = c.Val.I
		}
		if len(fc.Args) == 3 {
			def, err := b.win.bind(fc.Args[2])
			if err != nil {
				return nil, err
			}
			call.Default = castTo(def, arg.Type())
		}
	case fc.Star:
		if fn != WinCount {
			return nil, fmt.Errorf("plan: %s(*) is not valid", fc.Name)
		}
		call.Func = WinCountStar
	default:
		if len(fc.Args) != 1 {
			return nil, fmt.Errorf("plan: %s takes exactly one argument", fc.Name)
		}
		arg, err := b.win.bind(fc.Args[0])
		if err != nil {
			return nil, err
		}
		if (fn == WinSum || fn == WinAvg) && !arg.Type().IsNumeric() {
			return nil, fmt.Errorf("plan: %s over %s is not valid", fc.Name, arg.Type())
		}
		call.Arg = arg
	}
	if fc.Over.Frame != nil {
		call.Frame = frameFromAST(fc.Over.Frame)
	}

	// Bind the shared specification.
	var partitionBy []Expr
	for _, pe := range fc.Over.PartitionBy {
		e, err := b.win.bind(pe)
		if err != nil {
			return nil, err
		}
		partitionBy = append(partitionBy, e)
	}
	var orderBy []SortSpec
	for _, oi := range fc.Over.OrderBy {
		e, err := b.win.bind(oi.Expr)
		if err != nil {
			return nil, err
		}
		orderBy = append(orderBy, SortSpec{E: e, Desc: oi.Desc})
	}

	// Same-spec calls share one group (one Window node, one physical sort).
	gi := -1
	for i, g := range b.win.groups {
		if reflect.DeepEqual(g.partitionBy, partitionBy) && reflect.DeepEqual(g.orderBy, orderBy) {
			gi = i
			break
		}
	}
	if gi < 0 {
		b.win.groups = append(b.win.groups, &windowGroup{partitionBy: partitionBy, orderBy: orderBy})
		gi = len(b.win.groups) - 1
	}
	g := b.win.groups[gi]
	for ci, existing := range g.calls {
		if reflect.DeepEqual(existing, call) {
			return &windowRef{group: gi, call: ci, typ: WindowResultType(call)}, nil
		}
	}
	g.calls = append(g.calls, call)
	return &windowRef{group: gi, call: len(g.calls) - 1, typ: WindowResultType(call)}, nil
}

func frameFromAST(fs *sqlparse.FrameSpec) *Frame {
	conv := func(bound sqlparse.FrameBound) FrameBound {
		switch bound.Kind {
		case sqlparse.FrameUnboundedPreceding:
			return FrameBound{Kind: FrameUnboundedPreceding}
		case sqlparse.FramePreceding:
			return FrameBound{Kind: FramePreceding, N: bound.N}
		case sqlparse.FrameCurrentRow:
			return FrameBound{Kind: FrameCurrentRow}
		case sqlparse.FrameFollowing:
			return FrameBound{Kind: FrameFollowing, N: bound.N}
		default:
			return FrameBound{Kind: FrameUnboundedFollowing}
		}
	}
	return &Frame{Lo: conv(fs.Lo), Hi: conv(fs.Hi)}
}

// attachWindows stacks one Window node per collected spec group over n (the
// aggregate/HAVING output under aggregation, the FROM/WHERE plan otherwise)
// and returns the output slot offset of each group's first call. Stacking is
// prefix-stable: every node's schema extends its input's, so expressions over
// the original input schema stay valid at any level.
func attachWindows(n Node, groups []*windowGroup) (Node, []int) {
	offsets := make([]int, len(groups))
	off := len(n.Schema())
	for gi, g := range groups {
		offsets[gi] = off
		off += len(g.calls)
		n = &Window{Input: n, PartitionBy: g.partitionBy, OrderBy: g.orderBy, Calls: g.calls}
	}
	return n, offsets
}

// resolveWindowRefs rewrites windowRef placeholders into ColRefs over the
// window output columns.
func resolveWindowRefs(e Expr, offsets []int, groups []*windowGroup) Expr {
	switch x := e.(type) {
	case nil:
		return nil
	case *windowRef:
		return &ColRef{Slot: offsets[x.group] + x.call, Typ: x.typ, Name: groups[x.group].calls[x.call].Name}
	case *ColRef, *Const, *SubplanExpr, *AggRef, *outerRef:
		return e
	case *BinOp:
		c := *x
		c.L = resolveWindowRefs(x.L, offsets, groups)
		c.R = resolveWindowRefs(x.R, offsets, groups)
		return &c
	case *NotExpr:
		return &NotExpr{E: resolveWindowRefs(x.E, offsets, groups)}
	case *IsNullExpr:
		return &IsNullExpr{E: resolveWindowRefs(x.E, offsets, groups), Not: x.Not}
	case *LikeExpr:
		c := *x
		c.E = resolveWindowRefs(x.E, offsets, groups)
		return &c
	case *InListExpr:
		c := *x
		c.E = resolveWindowRefs(x.E, offsets, groups)
		return &c
	case *BetweenExpr:
		c := *x
		c.E = resolveWindowRefs(x.E, offsets, groups)
		c.Lo = resolveWindowRefs(x.Lo, offsets, groups)
		c.Hi = resolveWindowRefs(x.Hi, offsets, groups)
		return &c
	case *CaseExpr:
		c := *x
		c.Whens = make([]WhenClause, len(x.Whens))
		for i, w := range x.Whens {
			c.Whens[i] = WhenClause{
				Cond:   resolveWindowRefs(w.Cond, offsets, groups),
				Result: resolveWindowRefs(w.Result, offsets, groups),
			}
		}
		c.Else = resolveWindowRefs(x.Else, offsets, groups)
		return &c
	case *FuncExpr:
		c := *x
		c.Args = make([]Expr, len(x.Args))
		for i, a := range x.Args {
			c.Args[i] = resolveWindowRefs(a, offsets, groups)
		}
		return &c
	case *CastExpr:
		return &CastExpr{E: resolveWindowRefs(x.E, offsets, groups), To: x.To}
	default:
		return e
	}
}
