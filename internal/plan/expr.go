// Package plan implements monetlite's query planner: name resolution
// (binding) of parsed SQL into a typed logical plan, subquery decorrelation,
// and the high-level optimizations the paper attributes to the relational
// level (§3.1 "Query Plan Execution") — constant folding at bind time, then
// in Optimize: heuristic smallest-first join ordering over equi-join
// regions, pushdown of single-table conjuncts into scans, projection pruning
// so scans only read referenced columns, and fusion of Limit(Sort(…)) into a
// single TopN node (ORDER BY … LIMIT as a bounded heap instead of a full
// sort).
//
// Invariants callers may rely on:
//
//   - The logical plan is shared by both execution engines — the columnar
//     MAL-style engine (internal/exec) and the volcano row engine
//     (internal/rowstore) — so every node an optimizer rule can emit
//     (including TopN) must be executable by both.
//   - Optimizer rewrites preserve result rows AND row order for
//     order-sensitive operators: a fused TopN returns exactly the rows the
//     unfused stable Sort + Limit would, in the same order.
//   - Expressions reference their input by slot (ColRef.Slot into the child
//     schema); every structural rewrite remaps slots via MapSlots, so a
//     bound plan never holds dangling slot references.
package plan

import (
	"fmt"
	"strings"

	"monetlite/internal/mtypes"
	"monetlite/internal/vec"
)

// Expr is a typed, bound scalar expression.
type Expr interface {
	Type() mtypes.Type
}

// ColRef references a column of the input row by position.
type ColRef struct {
	Slot int
	Typ  mtypes.Type
	Name string // for plan display
}

// Const is a literal value.
type Const struct{ Val mtypes.Value }

// BinOpKind classifies binary operators.
type BinOpKind uint8

// Binary operator kinds.
const (
	BinArith BinOpKind = iota // uses Arith (OpAdd..)
	BinCmp                    // uses Cmp (CmpEq..)
	BinAnd
	BinOr
	BinConcat
)

// BinOp is a binary operation.
type BinOp struct {
	Kind  BinOpKind
	Arith vec.ArithOp // when Kind == BinArith
	Cmp   vec.CmpOp   // when Kind == BinCmp
	L, R  Expr
	Typ   mtypes.Type
}

// NotExpr is logical negation.
type NotExpr struct{ E Expr }

// IsNullExpr tests for NULL.
type IsNullExpr struct {
	E   Expr
	Not bool
}

// LikeExpr is the engine's own LIKE (no regexp dependency, see like.go).
type LikeExpr struct {
	E       Expr
	Pattern string
	Not     bool
}

// InListExpr tests membership in a constant list.
type InListExpr struct {
	E    Expr
	Vals []mtypes.Value
	Not  bool
}

// BetweenExpr is a range test, kept as a node so the executor can map it to
// one SelRange / imprints probe. SQL BETWEEN is inclusive on both ends (the
// zero value); the optimizer's range-conjunct fusion also produces half-open
// ranges (e.g. `a >= lo AND a < hi`) by setting LoExcl/HiExcl, so a pair of
// one-sided comparisons still becomes a single imprint-prunable probe.
type BetweenExpr struct {
	E, Lo, Hi      Expr
	Not            bool
	LoExcl, HiExcl bool // strict bound (>, <) instead of inclusive (>=, <=)
}

// CaseExpr is a searched CASE.
type CaseExpr struct {
	Whens []WhenClause
	Else  Expr // may be nil -> NULL
	Typ   mtypes.Type
}

// WhenClause is one CASE arm.
type WhenClause struct {
	Cond   Expr
	Result Expr
}

// FuncKind enumerates scalar functions.
type FuncKind uint8

// Scalar functions.
const (
	FuncExtractYear FuncKind = iota
	FuncExtractMonth
	FuncExtractDay
	FuncSubstring
	FuncNeg
	FuncAbs
	FuncSqrt
	FuncUpper
	FuncLower
	FuncConcat
	// FuncAddMonths shifts a DATE by a number of months (arg 1, an integer
	// constant folded from INTERVAL MONTH/YEAR literals), clamping the day to
	// the target month's length.
	FuncAddMonths
)

// FuncExpr is a scalar function application.
type FuncExpr struct {
	Kind FuncKind
	Args []Expr
	Typ  mtypes.Type
}

// CastExpr converts to a target type.
type CastExpr struct {
	E  Expr
	To mtypes.Type
}

// SubplanExpr is an uncorrelated scalar subquery: the plan produces (at most)
// one row, one column; its value is computed once per query execution.
type SubplanExpr struct {
	Plan Node
	Typ  mtypes.Type
}

// AggRef references the result of aggregate i inside post-aggregation
// projections (internal to the binder).
type AggRef struct {
	Slot int
	Typ  mtypes.Type
}

// Type implementations.
func (e *ColRef) Type() mtypes.Type  { return e.Typ }
func (e *Const) Type() mtypes.Type   { return e.Val.Typ }
func (e *BinOp) Type() mtypes.Type   { return e.Typ }
func (e *NotExpr) Type() mtypes.Type { return mtypes.Bool }

// Type returns BOOLEAN.
func (e *IsNullExpr) Type() mtypes.Type { return mtypes.Bool }

// Type returns BOOLEAN.
func (e *LikeExpr) Type() mtypes.Type { return mtypes.Bool }

// Type returns BOOLEAN.
func (e *InListExpr) Type() mtypes.Type { return mtypes.Bool }

// Type returns BOOLEAN.
func (e *BetweenExpr) Type() mtypes.Type { return mtypes.Bool }
func (e *CaseExpr) Type() mtypes.Type    { return e.Typ }
func (e *FuncExpr) Type() mtypes.Type    { return e.Typ }
func (e *CastExpr) Type() mtypes.Type    { return e.To }
func (e *SubplanExpr) Type() mtypes.Type { return e.Typ }
func (e *AggRef) Type() mtypes.Type      { return e.Typ }

// WalkExpr visits e and its children depth-first; fn returning false prunes.
func WalkExpr(e Expr, fn func(Expr) bool) {
	if e == nil || !fn(e) {
		return
	}
	switch x := e.(type) {
	case *BinOp:
		WalkExpr(x.L, fn)
		WalkExpr(x.R, fn)
	case *NotExpr:
		WalkExpr(x.E, fn)
	case *IsNullExpr:
		WalkExpr(x.E, fn)
	case *LikeExpr:
		WalkExpr(x.E, fn)
	case *InListExpr:
		WalkExpr(x.E, fn)
	case *BetweenExpr:
		WalkExpr(x.E, fn)
		WalkExpr(x.Lo, fn)
		WalkExpr(x.Hi, fn)
	case *CaseExpr:
		for _, w := range x.Whens {
			WalkExpr(w.Cond, fn)
			WalkExpr(w.Result, fn)
		}
		WalkExpr(x.Else, fn)
	case *FuncExpr:
		for _, a := range x.Args {
			WalkExpr(a, fn)
		}
	case *CastExpr:
		WalkExpr(x.E, fn)
	}
}

// MapSlots rewrites every ColRef slot through fn, returning a new tree.
func MapSlots(e Expr, fn func(slot int) int) Expr {
	switch x := e.(type) {
	case nil:
		return nil
	case *ColRef:
		return &ColRef{Slot: fn(x.Slot), Typ: x.Typ, Name: x.Name}
	case *Const, *SubplanExpr, *AggRef, *outerRef:
		return e
	case *BinOp:
		c := *x
		c.L, c.R = MapSlots(x.L, fn), MapSlots(x.R, fn)
		return &c
	case *NotExpr:
		return &NotExpr{E: MapSlots(x.E, fn)}
	case *IsNullExpr:
		return &IsNullExpr{E: MapSlots(x.E, fn), Not: x.Not}
	case *LikeExpr:
		c := *x
		c.E = MapSlots(x.E, fn)
		return &c
	case *InListExpr:
		c := *x
		c.E = MapSlots(x.E, fn)
		return &c
	case *BetweenExpr:
		c := *x
		c.E, c.Lo, c.Hi = MapSlots(x.E, fn), MapSlots(x.Lo, fn), MapSlots(x.Hi, fn)
		return &c
	case *CaseExpr:
		c := *x
		c.Whens = make([]WhenClause, len(x.Whens))
		for i, w := range x.Whens {
			c.Whens[i] = WhenClause{Cond: MapSlots(w.Cond, fn), Result: MapSlots(w.Result, fn)}
		}
		c.Else = MapSlots(x.Else, fn)
		return &c
	case *FuncExpr:
		c := *x
		c.Args = make([]Expr, len(x.Args))
		for i, a := range x.Args {
			c.Args[i] = MapSlots(a, fn)
		}
		return &c
	case *CastExpr:
		return &CastExpr{E: MapSlots(x.E, fn), To: x.To}
	default:
		panic(fmt.Sprintf("plan: MapSlots: unknown expr %T", e))
	}
}

// SlotsUsed collects the set of input slots referenced by e.
func SlotsUsed(e Expr, into map[int]bool) {
	WalkExpr(e, func(x Expr) bool {
		if c, ok := x.(*ColRef); ok {
			into[c.Slot] = true
		}
		return true
	})
}

// IsConst reports whether e contains no column references or subplans.
func IsConst(e Expr) bool {
	ok := true
	WalkExpr(e, func(x Expr) bool {
		switch x.(type) {
		case *ColRef, *SubplanExpr, *AggRef:
			ok = false
		}
		return ok
	})
	return ok
}

// ExprString renders an expression for plan display and tests.
func ExprString(e Expr) string {
	switch x := e.(type) {
	case nil:
		return "<nil>"
	case *ColRef:
		return fmt.Sprintf("#%d(%s)", x.Slot, x.Name)
	case *Const:
		if x.Val.Typ.Kind == mtypes.KVarchar && !x.Val.Null {
			return fmt.Sprintf("'%s'", x.Val.S)
		}
		return x.Val.String()
	case *BinOp:
		op := ""
		switch x.Kind {
		case BinArith:
			op = x.Arith.String()
		case BinCmp:
			op = x.Cmp.String()
		case BinAnd:
			op = "AND"
		case BinOr:
			op = "OR"
		case BinConcat:
			op = "||"
		}
		return fmt.Sprintf("(%s %s %s)", ExprString(x.L), op, ExprString(x.R))
	case *NotExpr:
		return fmt.Sprintf("NOT %s", ExprString(x.E))
	case *IsNullExpr:
		if x.Not {
			return fmt.Sprintf("%s IS NOT NULL", ExprString(x.E))
		}
		return fmt.Sprintf("%s IS NULL", ExprString(x.E))
	case *LikeExpr:
		neg := ""
		if x.Not {
			neg = " NOT"
		}
		return fmt.Sprintf("%s%s LIKE '%s'", ExprString(x.E), neg, x.Pattern)
	case *InListExpr:
		var sb strings.Builder
		for i, v := range x.Vals {
			if i > 0 {
				sb.WriteString(", ")
			}
			sb.WriteString(v.String())
		}
		neg := ""
		if x.Not {
			neg = " NOT"
		}
		return fmt.Sprintf("%s%s IN (%s)", ExprString(x.E), neg, sb.String())
	case *BetweenExpr:
		if x.LoExcl || x.HiExcl {
			loOp, hiOp := ">=", "<="
			if x.LoExcl {
				loOp = ">"
			}
			if x.HiExcl {
				hiOp = "<"
			}
			return fmt.Sprintf("%s RANGE %s %s, %s %s", ExprString(x.E), loOp, ExprString(x.Lo), hiOp, ExprString(x.Hi))
		}
		return fmt.Sprintf("%s BETWEEN %s AND %s", ExprString(x.E), ExprString(x.Lo), ExprString(x.Hi))
	case *CaseExpr:
		// Render the full shape: these strings key the executor's per-batch
		// CSE cache, so two different CASE expressions must not collide.
		var sb strings.Builder
		sb.WriteString("CASE")
		for _, w := range x.Whens {
			fmt.Fprintf(&sb, " WHEN %s THEN %s", ExprString(w.Cond), ExprString(w.Result))
		}
		if x.Else != nil {
			fmt.Fprintf(&sb, " ELSE %s", ExprString(x.Else))
		}
		sb.WriteString(" END")
		return sb.String()
	case *FuncExpr:
		var sb strings.Builder
		for i, a := range x.Args {
			if i > 0 {
				sb.WriteString(", ")
			}
			sb.WriteString(ExprString(a))
		}
		return fmt.Sprintf("func%d(%s)", x.Kind, sb.String())
	case *CastExpr:
		return fmt.Sprintf("CAST(%s AS %s)", ExprString(x.E), x.To)
	case *SubplanExpr:
		// The plan pointer distinguishes different scalar subqueries; the
		// same subplan instance still hits the CSE cache.
		return fmt.Sprintf("(scalar subquery %p)", x.Plan)
	case *AggRef:
		return fmt.Sprintf("agg#%d", x.Slot)
	default:
		return fmt.Sprintf("%T", e)
	}
}
