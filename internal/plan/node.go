package plan

import (
	"fmt"
	"strings"

	"monetlite/internal/mtypes"
	"monetlite/internal/vec"
)

// ColInfo describes one output column of a plan node.
type ColInfo struct {
	Qual string // table alias qualifier ("" for computed columns)
	Name string
	Typ  mtypes.Type
}

// Schema is an ordered list of output columns.
type Schema []ColInfo

// Node is a logical plan operator.
type Node interface {
	Schema() Schema
	Children() []Node
}

// Scan reads a stored table. Cols holds the pruned physical column indexes:
// output slot i maps to table column Cols[i]. Filters are conjuncts pushed
// into the scan, expressed over the scan's OUTPUT slots.
type Scan struct {
	Table   string
	Cols    []int
	Out     Schema
	Filters []Expr
	// Est is the optimizer's output-cardinality estimate (0 = unannotated);
	// the executor traces it against the actual row count.
	Est int64
}

// Filter keeps rows satisfying Pred.
type Filter struct {
	Input Node
	Pred  Expr
	Est   int64 // optimizer cardinality estimate (0 = unannotated)
}

// Project computes output columns from input rows.
type Project struct {
	Input Node
	Exprs []Expr
	Out   Schema
}

// JoinKind enumerates join flavors.
type JoinKind uint8

// Join flavors (Semi/Anti come from EXISTS / NOT EXISTS / IN decorrelation).
const (
	JoinInner JoinKind = iota
	JoinLeft
	JoinSemi
	JoinAnti
)

func (k JoinKind) String() string {
	return [...]string{"INNER", "LEFT", "SEMI", "ANTI"}[k]
}

// Join combines two inputs on equi-key pairs plus an optional residual
// predicate over the concatenated schema (left slots then right slots).
// For Semi/Anti joins the output schema is the left schema only.
type Join struct {
	Kind     JoinKind
	Left     Node
	Right    Node
	EquiL    []Expr // over left schema
	EquiR    []Expr // over right schema, positionally matching EquiL
	Residual Expr   // over concatenated schema; nil if none
	Est      int64  // optimizer cardinality estimate (0 = unannotated)
}

// AggCall is one aggregate computation.
type AggCall struct {
	Kind     vec.AggKind
	Arg      Expr // nil for COUNT(*)
	Distinct bool
	Name     string
}

// Aggregate groups by the GroupBy expressions and computes Aggs. Output
// schema: group columns first, then aggregate results.
type Aggregate struct {
	Input   Node
	GroupBy []Expr
	Aggs    []AggCall
	Names   []string // group column names
	Est     int64    // optimizer cardinality estimate (0 = unannotated)
}

// SortSpec is one sort key over the input schema.
type SortSpec struct {
	E    Expr
	Desc bool
}

// Sort orders rows.
type Sort struct {
	Input Node
	Keys  []SortSpec
}

// Limit returns up to N rows after skipping Offset.
type Limit struct {
	Input     Node
	N, Offset int64
}

// NoLimit is the Limit.N value meaning "no LIMIT clause" (OFFSET only).
// The TopN fusion rule only fires below it.
const NoLimit = int64(1)<<62 - 1

// TopN is the fusion of Limit(Sort(…)): the first N rows (after skipping
// Offset) of the input ordered by Keys, exactly as the stable Sort would
// produce them. The executor runs it as a bounded per-chunk heap plus a run
// merge instead of a full sort, so ORDER BY … LIMIT k never pays for rows it
// discards. Produced only by the optimizer (Optimize/fuseTopN), never bound
// directly.
type TopN struct {
	Input     Node
	Keys      []SortSpec
	N, Offset int64
}

// Distinct removes duplicate rows.
type Distinct struct{ Input Node }

// WinFunc enumerates the window functions.
type WinFunc uint8

// Window functions: the rank family, the offset pair, and the windowed
// aggregates.
const (
	WinRowNumber WinFunc = iota
	WinRank
	WinDenseRank
	WinLag
	WinLead
	WinSum
	WinCount
	WinCountStar
	WinMin
	WinMax
	WinAvg
)

func (f WinFunc) String() string {
	return [...]string{"ROW_NUMBER", "RANK", "DENSE_RANK", "LAG", "LEAD",
		"SUM", "COUNT", "COUNT(*)", "MIN", "MAX", "AVG"}[f]
}

// FrameBoundKind classifies one end of an explicit ROWS frame.
type FrameBoundKind uint8

// Frame bound kinds, in frame order (start bounds never sort after end
// bounds).
const (
	FrameUnboundedPreceding FrameBoundKind = iota
	FramePreceding
	FrameCurrentRow
	FrameFollowing
	FrameUnboundedFollowing
)

// FrameBound is one end of a ROWS frame (N used by Preceding/Following).
type FrameBound struct {
	Kind FrameBoundKind
	N    int64
}

// Frame is an explicit ROWS frame on a windowed aggregate. A nil *Frame on a
// WindowCall means the SQL default: the whole partition when the window has
// no ORDER BY, otherwise the peer-inclusive running frame (RANGE UNBOUNDED
// PRECEDING .. CURRENT ROW — all rows up to and including the current row's
// order-key peers).
type Frame struct {
	Lo, Hi FrameBound
}

// WindowCall is one window-function computation inside a Window node. Arg,
// Default and the enclosing node's PartitionBy/OrderBy are expressions over
// the node's input schema.
type WindowCall struct {
	Func    WinFunc
	Arg     Expr   // nil for ROW_NUMBER/RANK/DENSE_RANK/COUNT(*)
	Offset  int64  // LAG/LEAD distance (>= 0)
	Default Expr   // LAG/LEAD out-of-partition value; nil = NULL
	Frame   *Frame // explicit ROWS frame (windowed aggregates only)
	Name    string
}

// Window computes window functions over one shared specification: the input
// is ordered once by (PartitionBy, OrderBy) — the single physical sort every
// same-spec call shares — partition boundaries are discovered on that order,
// and each call's result column is appended to the input schema, positionally
// aligned with the *input* row order (Window preserves row order and count).
// Distinct specifications in one SELECT become stacked Window nodes.
type Window struct {
	Input       Node
	PartitionBy []Expr
	OrderBy     []SortSpec
	Calls       []WindowCall
	// SortFree is set by the optimizer when the input is already ordered
	// compatibly (partition keys as the ordering prefix, then exactly this
	// window's order keys), so the operator skips its physical sort: the
	// identity permutation is what the stable sort would return.
	SortFree bool
}

// WindowResultType computes a window call's output type.
func WindowResultType(c WindowCall) mtypes.Type {
	switch c.Func {
	case WinRowNumber, WinRank, WinDenseRank, WinCount, WinCountStar:
		return mtypes.BigInt
	case WinLag, WinLead:
		return c.Arg.Type()
	case WinSum:
		return vec.AggResultType(vec.AggSum, c.Arg.Type())
	case WinAvg:
		return mtypes.Double
	default: // min/max keep the input type
		return c.Arg.Type()
	}
}

// Schema implementations.
func (n *Scan) Schema() Schema { return n.Out }

// Children returns no inputs.
func (n *Scan) Children() []Node { return nil }

// Schema returns the input schema.
func (n *Filter) Schema() Schema { return n.Input.Schema() }

// Children returns the single input.
func (n *Filter) Children() []Node { return []Node{n.Input} }

// Schema returns the projected schema.
func (n *Project) Schema() Schema { return n.Out }

// Children returns the single input.
func (n *Project) Children() []Node { return []Node{n.Input} }

// Schema returns left ++ right (inner/left) or left (semi/anti).
func (n *Join) Schema() Schema {
	if n.Kind == JoinSemi || n.Kind == JoinAnti {
		return n.Left.Schema()
	}
	l := n.Left.Schema()
	r := n.Right.Schema()
	out := make(Schema, 0, len(l)+len(r))
	out = append(out, l...)
	if n.Kind == JoinLeft {
		for _, c := range r {
			out = append(out, c)
		}
	} else {
		out = append(out, r...)
	}
	return out
}

// Children returns both inputs.
func (n *Join) Children() []Node { return []Node{n.Left, n.Right} }

// Schema returns group columns followed by aggregate outputs.
func (n *Aggregate) Schema() Schema {
	out := make(Schema, 0, len(n.GroupBy)+len(n.Aggs))
	for i, g := range n.GroupBy {
		name := ""
		if i < len(n.Names) {
			name = n.Names[i]
		}
		out = append(out, ColInfo{Name: name, Typ: g.Type()})
	}
	for _, a := range n.Aggs {
		t := mtypes.BigInt
		if a.Arg != nil {
			t = a.Arg.Type()
		}
		out = append(out, ColInfo{Name: a.Name, Typ: vec.AggResultType(a.Kind, t)})
	}
	return out
}

// Children returns the single input.
func (n *Aggregate) Children() []Node { return []Node{n.Input} }

// Schema returns the input schema.
func (n *Sort) Schema() Schema { return n.Input.Schema() }

// Children returns the single input.
func (n *Sort) Children() []Node { return []Node{n.Input} }

// Schema returns the input schema.
func (n *Limit) Schema() Schema { return n.Input.Schema() }

// Children returns the single input.
func (n *Limit) Children() []Node { return []Node{n.Input} }

// Schema returns the input schema.
func (n *TopN) Schema() Schema { return n.Input.Schema() }

// Children returns the single input.
func (n *TopN) Children() []Node { return []Node{n.Input} }

// Schema returns the input schema.
func (n *Distinct) Schema() Schema { return n.Input.Schema() }

// Children returns the single input.
func (n *Distinct) Children() []Node { return []Node{n.Input} }

// Schema returns the input schema followed by one column per window call.
func (n *Window) Schema() Schema {
	in := n.Input.Schema()
	out := make(Schema, 0, len(in)+len(n.Calls))
	out = append(out, in...)
	for _, c := range n.Calls {
		out = append(out, ColInfo{Name: c.Name, Typ: WindowResultType(c)})
	}
	return out
}

// Children returns the single input.
func (n *Window) Children() []Node { return []Node{n.Input} }

// JoinTreeString renders the join nesting of a plan as a parenthesized
// expression over base-table names — e.g. "((customer * orders) * lineitem)"
// — collapsing row-shape nodes (filters, projections, sorts…). Inner joins
// print as "*"; other kinds print their name ("(a SEMI b)"). Plan-shape
// golden tests pin the optimizer's chosen join order against this rendering.
func JoinTreeString(n Node) string {
	switch x := n.(type) {
	case *Scan:
		return x.Table
	case *Join:
		op := " * "
		if x.Kind != JoinInner {
			op = " " + x.Kind.String() + " "
		}
		return "(" + JoinTreeString(x.Left) + op + JoinTreeString(x.Right) + ")"
	}
	if ch := n.Children(); len(ch) == 1 {
		return JoinTreeString(ch[0])
	}
	return "?"
}

// HasJoin reports whether the plan contains any Join node (used to decide
// whether a join-order trace line is worth emitting).
func HasJoin(n Node) bool {
	if _, ok := n.(*Join); ok {
		return true
	}
	for _, c := range n.Children() {
		if HasJoin(c) {
			return true
		}
	}
	return false
}

// PlanString renders an indented plan tree (for EXPLAIN and plan-shape tests).
func PlanString(n Node) string {
	var sb strings.Builder
	planString(&sb, n, 0)
	return sb.String()
}

func planString(sb *strings.Builder, n Node, depth int) {
	indent := strings.Repeat("  ", depth)
	switch x := n.(type) {
	case *Scan:
		fmt.Fprintf(sb, "%sSCAN %s cols=%v", indent, x.Table, x.Cols)
		for _, f := range x.Filters {
			fmt.Fprintf(sb, " filter=%s", ExprString(f))
		}
		sb.WriteByte('\n')
	case *Filter:
		fmt.Fprintf(sb, "%sFILTER %s\n", indent, ExprString(x.Pred))
		planString(sb, x.Input, depth+1)
	case *Project:
		names := make([]string, len(x.Out))
		for i, c := range x.Out {
			names[i] = c.Name
		}
		fmt.Fprintf(sb, "%sPROJECT %s\n", indent, strings.Join(names, ", "))
		planString(sb, x.Input, depth+1)
	case *Join:
		conds := make([]string, len(x.EquiL))
		for i := range x.EquiL {
			conds[i] = fmt.Sprintf("%s=%s", ExprString(x.EquiL[i]), ExprString(x.EquiR[i]))
		}
		fmt.Fprintf(sb, "%s%s JOIN on %s", indent, x.Kind, strings.Join(conds, " AND "))
		if x.Residual != nil {
			fmt.Fprintf(sb, " residual=%s", ExprString(x.Residual))
		}
		sb.WriteByte('\n')
		planString(sb, x.Left, depth+1)
		planString(sb, x.Right, depth+1)
	case *Aggregate:
		fmt.Fprintf(sb, "%sAGGREGATE groups=%d aggs=%d\n", indent, len(x.GroupBy), len(x.Aggs))
		planString(sb, x.Input, depth+1)
	case *Sort:
		fmt.Fprintf(sb, "%sSORT keys=%d\n", indent, len(x.Keys))
		planString(sb, x.Input, depth+1)
	case *Limit:
		fmt.Fprintf(sb, "%sLIMIT %d OFFSET %d\n", indent, x.N, x.Offset)
		planString(sb, x.Input, depth+1)
	case *TopN:
		fmt.Fprintf(sb, "%sTOPN %d OFFSET %d keys=%d\n", indent, x.N, x.Offset, len(x.Keys))
		planString(sb, x.Input, depth+1)
	case *Distinct:
		fmt.Fprintf(sb, "%sDISTINCT\n", indent)
		planString(sb, x.Input, depth+1)
	case *Window:
		calls := make([]string, len(x.Calls))
		for i, c := range x.Calls {
			calls[i] = c.Func.String()
		}
		fmt.Fprintf(sb, "%sWINDOW parts=%d orders=%d calls=%s", indent,
			len(x.PartitionBy), len(x.OrderBy), strings.Join(calls, ","))
		if x.SortFree {
			sb.WriteString(" sortfree")
		}
		sb.WriteByte('\n')
		planString(sb, x.Input, depth+1)
	default:
		fmt.Fprintf(sb, "%s%T\n", indent, n)
	}
}
