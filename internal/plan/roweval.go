package plan

import (
	"fmt"
	"math"
	"strings"

	"monetlite/internal/mtypes"
	"monetlite/internal/vec"
)

// EvalCtx carries the state needed to evaluate a bound expression against a
// single row. It is used by the volcano row engine, by INSERT/UPDATE value
// computation, and by constant folding (with a nil row).
type EvalCtx struct {
	Row []mtypes.Value
	// Subquery evaluates an uncorrelated scalar subplan (supplied by the
	// executing engine; nil when subplans cannot occur).
	Subquery func(Node) (mtypes.Value, error)
}

// EvalRow evaluates a bound expression row-at-a-time. This is the volcano
// engine's expression interpreter (the columnar engine uses vectorized
// kernels instead — both must agree, which differential tests enforce).
func EvalRow(e Expr, ctx *EvalCtx) (mtypes.Value, error) {
	switch x := e.(type) {
	case *Const:
		return x.Val, nil
	case *ColRef:
		if ctx == nil || x.Slot >= len(ctx.Row) {
			return mtypes.Value{}, fmt.Errorf("plan: no row value for slot %d", x.Slot)
		}
		return ctx.Row[x.Slot], nil
	case *AggRef:
		if ctx == nil || x.Slot >= len(ctx.Row) {
			return mtypes.Value{}, fmt.Errorf("plan: no row value for agg slot %d", x.Slot)
		}
		return ctx.Row[x.Slot], nil
	case *BinOp:
		return evalBinOp(x, ctx)
	case *NotExpr:
		v, err := EvalRow(x.E, ctx)
		if err != nil {
			return mtypes.Value{}, err
		}
		if v.Null {
			return mtypes.NullValue(mtypes.Bool), nil
		}
		return mtypes.NewBool(v.I == 0), nil
	case *IsNullExpr:
		v, err := EvalRow(x.E, ctx)
		if err != nil {
			return mtypes.Value{}, err
		}
		return mtypes.NewBool(v.Null != x.Not), nil
	case *LikeExpr:
		v, err := EvalRow(x.E, ctx)
		if err != nil {
			return mtypes.Value{}, err
		}
		if v.Null {
			return mtypes.NullValue(mtypes.Bool), nil
		}
		return mtypes.NewBool(MatchLike(v.S, x.Pattern) != x.Not), nil
	case *InListExpr:
		v, err := EvalRow(x.E, ctx)
		if err != nil {
			return mtypes.Value{}, err
		}
		if v.Null {
			return mtypes.NullValue(mtypes.Bool), nil
		}
		for _, c := range x.Vals {
			if mtypes.Equal(v, c) {
				return mtypes.NewBool(!x.Not), nil
			}
		}
		return mtypes.NewBool(x.Not), nil
	case *BetweenExpr:
		v, err := EvalRow(x.E, ctx)
		if err != nil {
			return mtypes.Value{}, err
		}
		lo, err := EvalRow(x.Lo, ctx)
		if err != nil {
			return mtypes.Value{}, err
		}
		hi, err := EvalRow(x.Hi, ctx)
		if err != nil {
			return mtypes.Value{}, err
		}
		if v.Null || lo.Null || hi.Null {
			return mtypes.NullValue(mtypes.Bool), nil
		}
		okLo := mtypes.Compare(v, lo) >= 0
		if x.LoExcl {
			okLo = mtypes.Compare(v, lo) > 0
		}
		okHi := mtypes.Compare(v, hi) <= 0
		if x.HiExcl {
			okHi = mtypes.Compare(v, hi) < 0
		}
		return mtypes.NewBool((okLo && okHi) != x.Not), nil
	case *CaseExpr:
		for _, w := range x.Whens {
			c, err := EvalRow(w.Cond, ctx)
			if err != nil {
				return mtypes.Value{}, err
			}
			if !c.Null && c.I != 0 {
				r, err := EvalRow(w.Result, ctx)
				if err != nil {
					return mtypes.Value{}, err
				}
				return coerceValue(r, x.Typ), nil
			}
		}
		if x.Else != nil {
			r, err := EvalRow(x.Else, ctx)
			if err != nil {
				return mtypes.Value{}, err
			}
			return coerceValue(r, x.Typ), nil
		}
		return mtypes.NullValue(x.Typ), nil
	case *FuncExpr:
		return evalFunc(x, ctx)
	case *CastExpr:
		v, err := EvalRow(x.E, ctx)
		if err != nil {
			return mtypes.Value{}, err
		}
		return CastValue(v, x.To)
	case *SubplanExpr:
		if ctx == nil || ctx.Subquery == nil {
			return mtypes.Value{}, fmt.Errorf("plan: scalar subquery cannot be evaluated here")
		}
		return ctx.Subquery(x.Plan)
	default:
		return mtypes.Value{}, fmt.Errorf("plan: cannot row-evaluate %T", e)
	}
}

func evalBinOp(x *BinOp, ctx *EvalCtx) (mtypes.Value, error) {
	l, err := EvalRow(x.L, ctx)
	if err != nil {
		return mtypes.Value{}, err
	}
	// Short-circuit three-valued AND/OR.
	if x.Kind == BinAnd || x.Kind == BinOr {
		if !l.Null {
			if x.Kind == BinAnd && l.I == 0 {
				return mtypes.NewBool(false), nil
			}
			if x.Kind == BinOr && l.I != 0 {
				return mtypes.NewBool(true), nil
			}
		}
		r, err := EvalRow(x.R, ctx)
		if err != nil {
			return mtypes.Value{}, err
		}
		switch {
		case !r.Null && x.Kind == BinAnd && r.I == 0:
			return mtypes.NewBool(false), nil
		case !r.Null && x.Kind == BinOr && r.I != 0:
			return mtypes.NewBool(true), nil
		case l.Null || r.Null:
			return mtypes.NullValue(mtypes.Bool), nil
		case x.Kind == BinAnd:
			return mtypes.NewBool(l.I != 0 && r.I != 0), nil
		default:
			return mtypes.NewBool(l.I != 0 || r.I != 0), nil
		}
	}
	r, err := EvalRow(x.R, ctx)
	if err != nil {
		return mtypes.Value{}, err
	}
	switch x.Kind {
	case BinCmp:
		if l.Null || r.Null {
			return mtypes.NullValue(mtypes.Bool), nil
		}
		c := mtypes.Compare(l, r)
		ok := false
		switch x.Cmp {
		case vec.CmpEq:
			ok = c == 0
		case vec.CmpNe:
			ok = c != 0
		case vec.CmpLt:
			ok = c < 0
		case vec.CmpLe:
			ok = c <= 0
		case vec.CmpGt:
			ok = c > 0
		default:
			ok = c >= 0
		}
		return mtypes.NewBool(ok), nil
	case BinConcat:
		if l.Null || r.Null {
			return mtypes.NullValue(mtypes.Varchar), nil
		}
		return mtypes.NewString(l.String() + r.String()), nil
	case BinArith:
		return evalArithValue(x, l, r)
	}
	return mtypes.Value{}, fmt.Errorf("plan: unknown binop kind %d", x.Kind)
}

func evalArithValue(x *BinOp, l, r mtypes.Value) (mtypes.Value, error) {
	rt := x.Typ
	if l.Null || r.Null {
		return mtypes.NullValue(rt), nil
	}
	op := x.Arith
	switch rt.Kind {
	case mtypes.KDouble:
		a, b := l.AsFloat(), r.AsFloat()
		var f float64
		switch op {
		case 0:
			f = a + b
		case 1:
			f = a - b
		case 2:
			f = a * b
		case 3:
			if b == 0 {
				return mtypes.NullValue(rt), nil
			}
			f = a / b
		default:
			if int64(b) == 0 {
				return mtypes.NullValue(rt), nil
			}
			f = float64(int64(a) % int64(b))
		}
		return mtypes.NewDouble(f), nil
	case mtypes.KDate:
		// date +/- days
		if l.Typ.Kind == mtypes.KDate {
			d := int32(l.I)
			k := int32(r.AsInt())
			if op == 1 {
				return mtypes.NewDate(d - k), nil
			}
			return mtypes.NewDate(d + k), nil
		}
		return mtypes.NewDate(int32(r.I) + int32(l.AsInt())), nil
	case mtypes.KInt:
		if l.Typ.Kind == mtypes.KDate && r.Typ.Kind == mtypes.KDate {
			return mtypes.NewInt(mtypes.Int, l.I-r.I), nil
		}
		fallthrough
	default:
		// Integer / decimal arithmetic at the result scale.
		scale := 0
		if rt.Kind == mtypes.KDecimal {
			scale = rt.Scale
		}
		av := scaledInt(l, scale)
		bv := scaledInt(r, scale)
		if op == 2 && rt.Kind == mtypes.KDecimal {
			// multiplication: operate at native scales, rescale after
			av, bv = scaledInt(l, scaleOf(l.Typ)), scaledInt(r, scaleOf(r.Typ))
		}
		var v int64
		switch op {
		case 0:
			v = av + bv
		case 1:
			v = av - bv
		case 2:
			v = av * bv
		case 3:
			if bv == 0 {
				return mtypes.NullValue(rt), nil
			}
			v = av / bv
		default:
			if bv == 0 {
				return mtypes.NullValue(rt), nil
			}
			v = av % bv
		}
		if op == 2 && rt.Kind == mtypes.KDecimal {
			v = mtypes.RescaleDecimal(v, scaleOf(l.Typ)+scaleOf(r.Typ), rt.Scale)
		}
		return mtypes.Value{Typ: rt, I: v}, nil
	}
}

func scaledInt(v mtypes.Value, scale int) int64 {
	from := 0
	if v.Typ.Kind == mtypes.KDecimal {
		from = v.Typ.Scale
	}
	return mtypes.RescaleDecimal(v.I, from, scale)
}

func evalFunc(x *FuncExpr, ctx *EvalCtx) (mtypes.Value, error) {
	args := make([]mtypes.Value, len(x.Args))
	for i, a := range x.Args {
		v, err := EvalRow(a, ctx)
		if err != nil {
			return mtypes.Value{}, err
		}
		args[i] = v
	}
	switch x.Kind {
	case FuncExtractYear, FuncExtractMonth, FuncExtractDay:
		if args[0].Null {
			return mtypes.NullValue(mtypes.Int), nil
		}
		d := int32(args[0].I)
		var n int32
		switch x.Kind {
		case FuncExtractYear:
			n = mtypes.DateYear(d)
		case FuncExtractMonth:
			n = mtypes.DateMonth(d)
		default:
			n = mtypes.DateDay(d)
		}
		return mtypes.NewInt(mtypes.Int, int64(n)), nil
	case FuncSubstring:
		if args[0].Null {
			return mtypes.NullValue(mtypes.Varchar), nil
		}
		s := args[0].S
		start := int(args[1].AsInt()) - 1 // SQL is 1-based
		if start < 0 {
			start = 0
		}
		if start > len(s) {
			start = len(s)
		}
		end := len(s)
		if len(args) > 2 && !args[2].Null {
			end = start + int(args[2].AsInt())
			if end > len(s) {
				end = len(s)
			}
			if end < start {
				end = start
			}
		}
		return mtypes.NewString(s[start:end]), nil
	case FuncNeg:
		if args[0].Null {
			return mtypes.NullValue(x.Typ), nil
		}
		v := args[0]
		if v.Typ.Kind == mtypes.KDouble {
			return mtypes.NewDouble(-v.F), nil
		}
		return mtypes.Value{Typ: v.Typ, I: -v.I}, nil
	case FuncAbs:
		if args[0].Null {
			return mtypes.NullValue(x.Typ), nil
		}
		v := args[0]
		if v.Typ.Kind == mtypes.KDouble {
			return mtypes.NewDouble(math.Abs(v.F)), nil
		}
		if v.I < 0 {
			return mtypes.Value{Typ: v.Typ, I: -v.I}, nil
		}
		return v, nil
	case FuncSqrt:
		if args[0].Null {
			return mtypes.NullValue(mtypes.Double), nil
		}
		return mtypes.NewDouble(math.Sqrt(args[0].AsFloat())), nil
	case FuncUpper:
		if args[0].Null {
			return mtypes.NullValue(mtypes.Varchar), nil
		}
		return mtypes.NewString(strings.ToUpper(args[0].S)), nil
	case FuncLower:
		if args[0].Null {
			return mtypes.NullValue(mtypes.Varchar), nil
		}
		return mtypes.NewString(strings.ToLower(args[0].S)), nil
	case FuncConcat:
		var sb strings.Builder
		for _, a := range args {
			if a.Null {
				return mtypes.NullValue(mtypes.Varchar), nil
			}
			sb.WriteString(a.String())
		}
		return mtypes.NewString(sb.String()), nil
	case FuncAddMonths:
		if args[0].Null || args[1].Null {
			return mtypes.NullValue(mtypes.Date), nil
		}
		return mtypes.NewDate(mtypes.AddMonths(int32(args[0].I), int(args[1].AsInt()))), nil
	}
	return mtypes.Value{}, fmt.Errorf("plan: unknown function kind %d", x.Kind)
}

// CastValue converts a scalar to the target type following SQL CAST rules.
func CastValue(v mtypes.Value, to mtypes.Type) (mtypes.Value, error) {
	if v.Null {
		return mtypes.NullValue(to), nil
	}
	if v.Typ == to {
		return v, nil
	}
	switch to.Kind {
	case mtypes.KDouble:
		return mtypes.NewDouble(v.AsFloat()), nil
	case mtypes.KTinyInt, mtypes.KSmallInt, mtypes.KInt, mtypes.KBigInt:
		var n int64
		switch v.Typ.Kind {
		case mtypes.KDouble:
			n = int64(v.F)
		case mtypes.KDecimal:
			n = mtypes.RescaleDecimal(v.I, v.Typ.Scale, 0)
		case mtypes.KVarchar:
			d, err := mtypes.ParseDecimal(v.S, 0)
			if err != nil {
				return mtypes.Value{}, err
			}
			n = d
		default:
			n = v.I
		}
		return mtypes.Value{Typ: to, I: n}, nil
	case mtypes.KDecimal:
		switch v.Typ.Kind {
		case mtypes.KDouble:
			f := v.F * float64(mtypes.Pow10[to.Scale])
			if f < 0 {
				return mtypes.Value{Typ: to, I: int64(f - 0.5)}, nil
			}
			return mtypes.Value{Typ: to, I: int64(f + 0.5)}, nil
		case mtypes.KDecimal:
			return mtypes.Value{Typ: to, I: mtypes.RescaleDecimal(v.I, v.Typ.Scale, to.Scale)}, nil
		case mtypes.KVarchar:
			d, err := mtypes.ParseDecimal(v.S, to.Scale)
			if err != nil {
				return mtypes.Value{}, err
			}
			return mtypes.Value{Typ: to, I: d}, nil
		default:
			return mtypes.Value{Typ: to, I: v.I * mtypes.Pow10[to.Scale]}, nil
		}
	case mtypes.KVarchar:
		return mtypes.NewString(v.String()), nil
	case mtypes.KDate:
		switch v.Typ.Kind {
		case mtypes.KVarchar:
			d, err := mtypes.ParseDate(v.S)
			if err != nil {
				return mtypes.Value{}, err
			}
			return mtypes.NewDate(d), nil
		default:
			return mtypes.NewDate(int32(v.I)), nil
		}
	case mtypes.KBool:
		return mtypes.NewBool(v.I != 0 || (v.Typ.Kind == mtypes.KDouble && v.F != 0)), nil
	}
	return mtypes.Value{}, fmt.Errorf("plan: unsupported cast %s -> %s", v.Typ, to)
}

// coerceValue aligns a value with a target type without error reporting
// (used by CASE result alignment where the binder already validated types).
func coerceValue(v mtypes.Value, to mtypes.Type) mtypes.Value {
	out, err := CastValue(v, to)
	if err != nil {
		return mtypes.NullValue(to)
	}
	return out
}

func scaleOf(t mtypes.Type) int {
	if t.Kind == mtypes.KDecimal {
		return t.Scale
	}
	return 0
}

// FoldConst evaluates a constant expression at plan time; returns e unchanged
// if it is not constant or evaluation fails.
func FoldConst(e Expr) Expr {
	if _, isConst := e.(*Const); isConst || !IsConst(e) {
		return e
	}
	v, err := EvalRow(e, &EvalCtx{})
	if err != nil {
		return e
	}
	return &Const{Val: v}
}
