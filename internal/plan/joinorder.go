package plan

import (
	"math"
	"math/bits"
)

// Join-order enumeration. The region collector (opt.go) flattens a maximal
// inner-join/filter region into leaves + predicates; this file picks the
// left-deep join sequence. Up to dpMaxLeaves relations the choice is exact
// dynamic programming over connected subsets (cost = sum of intermediate
// cardinalities, the classic C_out model); above that, a cost-driven greedy
// using the same cardinality model. Cross products are avoided unless the
// join graph is disconnected.
//
// The executor picks build/probe sides at runtime (the smaller input builds,
// feeding mal.MitosisJoin's asymmetry clamp), so enumeration only has to get
// the sequence right — the orientation of each hash table follows.

// dpMaxLeaves caps exact enumeration: 2^8 subsets × 8 candidates is trivial;
// beyond that the greedy path takes over.
const dpMaxLeaves = 8

// joinGraph is the statistics view of one join region: per-leaf cardinality
// estimates plus pairwise equi-edge selectivities.
type joinGraph struct {
	cards []float64
	// pairSel[a*n+b] = combined selectivity of the equi edges between leaves
	// a and b (1 when none; symmetric).
	pairSel []float64
	hasEdge []bool
}

func newJoinGraph(cards []float64) *joinGraph {
	n := len(cards)
	g := &joinGraph{cards: cards, pairSel: make([]float64, n*n), hasEdge: make([]bool, n*n)}
	for i := range g.pairSel {
		g.pairSel[i] = 1
	}
	return g
}

// addEdge records one equi predicate between leaves a and b. Multiple
// predicates on the same pair (composite keys) multiply with damping — the
// second key column rarely cuts as much as the first.
func (g *joinGraph) addEdge(a, b int, sel float64) {
	n := len(g.cards)
	for _, idx := range []int{a*n + b, b*n + a} {
		if g.hasEdge[idx] {
			sel2 := math.Sqrt(sel)
			g.pairSel[idx] *= sel2
		} else {
			g.pairSel[idx] = sel
			g.hasEdge[idx] = true
		}
	}
}

func (g *joinGraph) edge(a, b int) bool { return g.hasEdge[a*len(g.cards)+b] }

// cardOfSet estimates the cardinality of joining the leaves in set (a
// bitmask): the product of leaf cardinalities times every edge selectivity
// inside the set. Depends only on the set, not the order — which is what
// makes subset DP sound.
func (g *joinGraph) cardOfSet(set uint) float64 {
	n := len(g.cards)
	card := 1.0
	for i := 0; i < n; i++ {
		if set&(1<<i) == 0 {
			continue
		}
		card *= g.cards[i]
		for j := i + 1; j < n; j++ {
			if set&(1<<j) != 0 && g.edge(i, j) {
				card *= g.pairSel[i*n+j]
			}
		}
	}
	return card
}

// extendCard is the incremental form: card(set ∪ {j}) given card(set).
func (g *joinGraph) extendCard(setCard float64, set uint, j int) float64 {
	n := len(g.cards)
	card := setCard * g.cards[j]
	for i := 0; i < n; i++ {
		if set&(1<<i) != 0 && g.edge(i, j) {
			card *= g.pairSel[i*n+j]
		}
	}
	return card
}

// connectedTo reports whether leaf j has an equi edge into set.
func (g *joinGraph) connectedTo(set uint, j int) bool {
	for i := 0; i < len(g.cards); i++ {
		if set&(1<<i) != 0 && g.edge(i, j) {
			return true
		}
	}
	return false
}

// chooseJoinOrder returns the left-deep join permutation for the graph:
// exact DP for small regions, greedy above. Both paths share cardOfSet, so
// on graphs where greedy happens to be optimal they return the same order.
func chooseJoinOrder(g *joinGraph) []int {
	n := len(g.cards)
	if n <= 1 {
		return identityPerm(n)
	}
	if n <= dpMaxLeaves {
		return dpJoinOrder(g)
	}
	return greedyJoinOrder(g)
}

func identityPerm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	return p
}

// dpJoinOrder runs subset DP for left-deep trees: dp[S] = cheapest cost of
// joining exactly the leaves in S, where cost accumulates the cardinality of
// every intermediate (and final) result. Extensions follow join edges; a
// disconnected extension is admitted only when no connected one exists, so
// cross products appear exactly when the graph forces them.
func dpJoinOrder(g *joinGraph) []int {
	n := len(g.cards)
	full := uint(1)<<n - 1
	const inf = math.MaxFloat64
	cost := make([]float64, full+1)
	last := make([]int8, full+1)
	for s := range cost {
		cost[s] = inf
		last[s] = -1
	}
	for i := 0; i < n; i++ {
		cost[1<<i] = 0 // base relations are free; scans are paid regardless
	}
	for set := uint(1); set <= full; set++ {
		if bits.OnesCount(set) < 2 {
			continue
		}
		setCard := g.cardOfSet(set)
		// Connected extensions first; fall back to any extension when the
		// subgraph is disconnected.
		for pass := 0; pass < 2; pass++ {
			found := false
			for j := 0; j < n; j++ {
				if set&(1<<j) == 0 {
					continue
				}
				rest := set &^ (1 << j)
				if cost[rest] == inf {
					continue
				}
				if pass == 0 && !g.connectedTo(rest, j) {
					continue
				}
				found = true
				if c := cost[rest] + setCard; c < cost[set] {
					cost[set] = c
					last[set] = int8(j)
				}
			}
			if found {
				break
			}
		}
	}
	// Reconstruct the permutation back-to-front.
	perm := make([]int, n)
	set := full
	for k := n - 1; k >= 1; k-- {
		j := int(last[set])
		if j < 0 {
			// Shouldn't happen; fall back to any remaining leaf.
			for i := 0; i < n; i++ {
				if set&(1<<i) != 0 {
					j = i
					break
				}
			}
		}
		perm[k] = j
		set &^= 1 << uint(j)
	}
	for i := 0; i < n; i++ {
		if set&(1<<i) != 0 {
			perm[0] = i
			break
		}
	}
	return perm
}

// greedyJoinOrder picks the smallest leaf, then repeatedly appends the
// connectable leaf that minimizes the next intermediate cardinality (any
// leaf when none connects). Same cost model as the DP, linear in joins.
func greedyJoinOrder(g *joinGraph) []int {
	n := len(g.cards)
	perm := make([]int, 0, n)
	start := 0
	for i := 1; i < n; i++ {
		if g.cards[i] < g.cards[start] {
			start = i
		}
	}
	perm = append(perm, start)
	set := uint(1) << start
	setCard := g.cards[start]
	for len(perm) < n {
		best, bestCard := -1, 0.0
		bestConn := false
		for j := 0; j < n; j++ {
			if set&(1<<j) != 0 {
				continue
			}
			conn := g.connectedTo(set, j)
			if bestConn && !conn {
				continue
			}
			c := g.extendCard(setCard, set, j)
			if best < 0 || (conn && !bestConn) || c < bestCard {
				best, bestCard, bestConn = j, c, conn
			}
		}
		perm = append(perm, best)
		set |= 1 << best
		setCard = bestCard
	}
	return perm
}
