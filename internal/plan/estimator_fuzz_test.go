package plan

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"monetlite/internal/mtypes"
	"monetlite/internal/storage"
	"monetlite/internal/vec"
)

// fuzzCat is a synthetic one-table catalog with statistics computed by the
// real storage sampler, so the fuzzer exercises the estimator against the
// same ColStats the engine serves.
type fuzzCat struct {
	meta  *storage.TableMeta
	rows  [][]mtypes.Value
	stats []storage.ColStats
}

func (c *fuzzCat) TableMeta(name string) (*storage.TableMeta, bool) {
	if name != c.meta.Name {
		return nil, false
	}
	return c.meta, true
}
func (c *fuzzCat) TableRows(string) int64 { return int64(len(c.rows)) }
func (c *fuzzCat) ColStats(_ string, ci int) (storage.ColStats, bool) {
	return c.stats[ci], true
}

// genFuzzTable builds nRows rows over five columns with distinct shapes:
// uniform int, skewed int, uniform double, low-cardinality string, and a
// nullable int. Stats come from storage.ComputeColStats on the real vectors.
func genFuzzTable(rng *rand.Rand, nRows int) *fuzzCat {
	words := []string{"alpha", "beta", "gamma", "delta", "epsilon", "zeta"}
	meta := &storage.TableMeta{Name: "t", Cols: []storage.ColDef{
		{Name: "u", Typ: mtypes.Int},
		{Name: "s", Typ: mtypes.Int},
		{Name: "d", Typ: mtypes.Double},
		{Name: "w", Typ: mtypes.Varchar},
		{Name: "n", Typ: mtypes.Int},
	}}
	rows := make([][]mtypes.Value, nRows)
	vecs := []*vec.Vector{
		vec.New(mtypes.Int, nRows),
		vec.New(mtypes.Int, nRows),
		vec.New(mtypes.Double, nRows),
		vec.New(mtypes.Varchar, nRows),
		vec.New(mtypes.Int, nRows),
	}
	ndv := 1 + rng.Intn(200)
	for i := 0; i < nRows; i++ {
		u := int64(rng.Intn(ndv))
		sk := int64(rng.Intn(rng.Intn(50) + 1)) // skewed toward 0
		d := rng.Float64() * 1000
		w := words[rng.Intn(len(words))]
		row := []mtypes.Value{
			mtypes.NewInt(mtypes.Int, u),
			mtypes.NewInt(mtypes.Int, sk),
			mtypes.NewDouble(d),
			mtypes.NewString(w),
		}
		vecs[0].I32[i] = int32(u)
		vecs[1].I32[i] = int32(sk)
		vecs[2].F64[i] = d
		vecs[3].Str[i] = w
		if rng.Intn(4) == 0 {
			vecs[4].SetNull(i)
			row = append(row, mtypes.NullValue(mtypes.Int))
		} else {
			v := int64(rng.Intn(30))
			vecs[4].I32[i] = int32(v)
			row = append(row, mtypes.NewInt(mtypes.Int, v))
		}
		rows[i] = row
	}
	c := &fuzzCat{meta: meta, rows: rows}
	for _, v := range vecs {
		c.stats = append(c.stats, *storage.ComputeColStats(v))
	}
	return c
}

func fuzzScan(c *fuzzCat) *Scan {
	sc := &Scan{Table: "t"}
	for i, col := range c.meta.Cols {
		sc.Cols = append(sc.Cols, i)
		sc.Out = append(sc.Out, ColInfo{Qual: "t", Name: col.Name, Typ: col.Typ})
	}
	return sc
}

// genPredicate draws one atomic predicate over a random column.
func genPredicate(rng *rand.Rand, c *fuzzCat) Expr {
	ci := rng.Intn(len(c.meta.Cols))
	col := &ColRef{Slot: ci, Typ: c.meta.Cols[ci].Typ, Name: c.meta.Cols[ci].Name}
	randConst := func() Expr {
		switch c.meta.Cols[ci].Typ.Kind {
		case mtypes.KDouble:
			return &Const{Val: mtypes.NewDouble(rng.Float64() * 1200)}
		case mtypes.KVarchar:
			words := []string{"alpha", "beta", "gamma", "delta", "omega"}
			return &Const{Val: mtypes.NewString(words[rng.Intn(len(words))])}
		default:
			return &Const{Val: mtypes.NewInt(mtypes.Int, int64(rng.Intn(250)-10))}
		}
	}
	switch rng.Intn(6) {
	case 0:
		return &BinOp{Kind: BinCmp, Cmp: vec.CmpEq, L: col, R: randConst(), Typ: mtypes.Bool}
	case 1:
		ops := []vec.CmpOp{vec.CmpLt, vec.CmpLe, vec.CmpGt, vec.CmpGe, vec.CmpNe}
		return &BinOp{Kind: BinCmp, Cmp: ops[rng.Intn(len(ops))], L: col, R: randConst(), Typ: mtypes.Bool}
	case 2:
		return &BetweenExpr{E: col, Lo: randConst(), Hi: randConst()}
	case 3:
		k := 1 + rng.Intn(5)
		vals := make([]mtypes.Value, k)
		for i := range vals {
			vals[i] = randConst().(*Const).Val
		}
		return &InListExpr{E: col, Vals: vals, Not: rng.Intn(4) == 0}
	case 4:
		return &IsNullExpr{E: col, Not: rng.Intn(2) == 0}
	default:
		sc := c.meta.Cols[3]
		scol := &ColRef{Slot: 3, Typ: sc.Typ, Name: sc.Name}
		pats := []string{"al%", "be%", "%ta", "%amm%", "ome%"}
		return &LikeExpr{E: scol, Pattern: pats[rng.Intn(len(pats))]}
	}
}

// trueCard counts rows where the predicate evaluates to (non-null) true,
// using the volcano row interpreter as ground truth.
func trueCard(t *testing.T, c *fuzzCat, p Expr) int {
	t.Helper()
	n := 0
	for _, row := range c.rows {
		v, err := EvalRow(p, &EvalCtx{Row: row})
		if err != nil {
			t.Fatalf("EvalRow(%s): %v", ExprString(p), err)
		}
		if !v.Null && v.I != 0 {
			n++
		}
	}
	return n
}

// TestEstimatorProperties fuzzes randomized tables and predicates, asserting
// the estimator's structural guarantees: estimates stay within [0, rows],
// sampled NDV never exceeds the row count, and adding a conjunct never
// increases the estimate. q-errors against the true cardinality are logged,
// and for single predicates over the uniform column (exactly the homogeneity
// the independence model assumes) the q-error must stay bounded.
func TestEstimatorProperties(t *testing.T) {
	for seed := int64(1); seed <= 4; seed++ {
		rng := rand.New(rand.NewSource(seed))
		nRows := 500 + rng.Intn(3000)
		c := genFuzzTable(rng, nRows)
		rows := float64(nRows)

		for ci, st := range c.stats {
			if st.NDV > int64(nRows) {
				t.Fatalf("seed %d col %d: ndv %d > rows %d", seed, ci, st.NDV, nRows)
			}
			if st.Rows != int64(nRows) || st.NullCount > st.Rows {
				t.Fatalf("seed %d col %d: bad stats %+v", seed, ci, st)
			}
		}

		var qWorst float64
		var qSum float64
		var qN int
		for iter := 0; iter < 150; iter++ {
			nConj := 1 + rng.Intn(3)
			var conj Expr
			prev := rows
			for k := 0; k < nConj; k++ {
				p := genPredicate(rng, c)
				if conj == nil {
					conj = p
				} else {
					conj = &BinOp{Kind: BinAnd, L: conj, R: p, Typ: mtypes.Bool}
				}
				est := EstimateCard(c, &Filter{Input: fuzzScan(c), Pred: conj})
				if est < 0 || est > rows+0.5 {
					t.Fatalf("seed %d iter %d: estimate %g outside [0, %d] for %s",
						seed, iter, est, nRows, ExprString(conj))
				}
				// Monotone: a conjunction can only narrow the result.
				if est > prev+1e-6 {
					t.Fatalf("seed %d iter %d: adding a conjunct raised the estimate %g -> %g for %s",
						seed, iter, prev, est, ExprString(conj))
				}
				prev = est
			}
			truth := trueCard(t, c, conj)
			q := math.Max(prev, 1) / math.Max(float64(truth), 1)
			if q < 1 {
				q = 1 / q
			}
			qSum += q
			qN++
			if q > qWorst {
				qWorst = q
			}
		}
		t.Logf("seed %d: rows=%d mean q-error %.2f worst %.2f", seed, nRows, qSum/float64(qN), qWorst)

		// Uniform column, single equality/range predicates: the estimator's
		// model matches the data generator, so q-error must stay small.
		for iter := 0; iter < 60; iter++ {
			col := &ColRef{Slot: 0, Typ: mtypes.Int, Name: "u"}
			hi := int64(c.stats[0].Max.I)
			var p Expr
			if iter%2 == 0 {
				p = &BinOp{Kind: BinCmp, Cmp: vec.CmpEq, L: col,
					R: &Const{Val: mtypes.NewInt(mtypes.Int, int64(rng.Intn(int(hi+1))))}, Typ: mtypes.Bool}
			} else {
				p = &BinOp{Kind: BinCmp, Cmp: vec.CmpLe, L: col,
					R: &Const{Val: mtypes.NewInt(mtypes.Int, int64(rng.Intn(int(hi+1))))}, Typ: mtypes.Bool}
			}
			est := EstimateCard(c, &Filter{Input: fuzzScan(c), Pred: p})
			truth := trueCard(t, c, p)
			q := math.Max(est, 1) / math.Max(float64(truth), 1)
			if q < 1 {
				q = 1 / q
			}
			if q > 10 {
				t.Fatalf("seed %d: uniform-column q-error %.1f (est %g, true %d) for %s",
					seed, q, est, truth, ExprString(p))
			}
		}
	}
}

// TestEstimatorJoinAndAggBounds pins the non-leaf propagation rules on a
// deterministic table: joins never exceed the cross product, aggregates
// never exceed their input, and annotateEst stamps every node.
func TestEstimatorJoinAndAggBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	c := genFuzzTable(rng, 2000)
	rows := float64(len(c.rows))

	l, r := fuzzScan(c), fuzzScan(c)
	join := &Join{
		Kind:  JoinInner,
		Left:  l,
		Right: r,
		EquiL: []Expr{&ColRef{Slot: 0, Typ: mtypes.Int, Name: "u"}},
		EquiR: []Expr{&ColRef{Slot: 0, Typ: mtypes.Int, Name: "u"}},
	}
	jc := EstimateCard(c, join)
	if jc <= 0 || jc > rows*rows {
		t.Fatalf("join estimate %g outside (0, %g]", jc, rows*rows)
	}
	agg := &Aggregate{
		Input:   join,
		GroupBy: []Expr{&ColRef{Slot: 0, Typ: mtypes.Int, Name: "u"}},
		Names:   []string{"u"},
		Aggs:    []AggCall{{Kind: vec.AggCountStar, Name: "count"}},
	}
	ac := EstimateCard(c, agg)
	if ac <= 0 || ac > jc {
		t.Fatalf("aggregate estimate %g outside (0, join %g]", ac, jc)
	}

	annotateEst(c, agg)
	for _, n := range []struct {
		name string
		est  int64
	}{{"join", join.Est}, {"agg", agg.Est}, {"scan", l.Est}} {
		if n.est < 1 {
			t.Fatalf("annotateEst left %s unstamped: %d", n.name, n.est)
		}
	}
	_ = fmt.Sprintf
}
