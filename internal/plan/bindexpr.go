package plan

import (
	"fmt"

	"monetlite/internal/mtypes"
	"monetlite/internal/sqlparse"
	"monetlite/internal/vec"
)

// walkAST visits an AST expression depth-first.
func walkAST(e sqlparse.Expr, fn func(sqlparse.Expr) bool) {
	if e == nil || !fn(e) {
		return
	}
	switch x := e.(type) {
	case *sqlparse.BinaryExpr:
		walkAST(x.L, fn)
		walkAST(x.R, fn)
	case *sqlparse.UnaryExpr:
		walkAST(x.E, fn)
	case *sqlparse.FuncCall:
		for _, a := range x.Args {
			walkAST(a, fn)
		}
		if x.Over != nil {
			for _, pe := range x.Over.PartitionBy {
				walkAST(pe, fn)
			}
			for _, oi := range x.Over.OrderBy {
				walkAST(oi.Expr, fn)
			}
		}
	case *sqlparse.CaseExpr:
		walkAST(x.Operand, fn)
		for _, w := range x.Whens {
			walkAST(w.Cond, fn)
			walkAST(w.Result, fn)
		}
		walkAST(x.Else, fn)
	case *sqlparse.CastExpr:
		walkAST(x.E, fn)
	case *sqlparse.LikeExpr:
		walkAST(x.E, fn)
		walkAST(x.Pattern, fn)
	case *sqlparse.InExpr:
		walkAST(x.E, fn)
		for _, v := range x.List {
			walkAST(v, fn)
		}
	case *sqlparse.BetweenExpr:
		walkAST(x.E, fn)
		walkAST(x.Lo, fn)
		walkAST(x.Hi, fn)
	case *sqlparse.IsNullExpr:
		walkAST(x.E, fn)
	case *sqlparse.ExtractExpr:
		walkAST(x.E, fn)
	case *sqlparse.SubstringExpr:
		walkAST(x.E, fn)
		walkAST(x.From, fn)
		walkAST(x.For, fn)
	}
}

// bindExpr binds an AST expression over a scope into a typed Expr. References
// resolving to a parent scope become outerRef markers (handled only inside
// subquery decorrelation; anywhere else they are an error surfaced later).
func (b *binder) bindExpr(ast sqlparse.Expr, s *scope) (Expr, error) {
	switch x := ast.(type) {
	case *sqlparse.Ident:
		if s == nil {
			return nil, fmt.Errorf("plan: column %q not allowed here", x.Name)
		}
		slot, depth, typ, err := s.resolve(x.Qualifier, x.Name)
		if err != nil {
			return nil, err
		}
		if depth == 0 {
			return &ColRef{Slot: slot, Typ: typ, Name: x.Name}, nil
		}
		if depth == 1 {
			return &outerRef{Slot: slot, Typ: typ, Name: x.Name}, nil
		}
		return nil, fmt.Errorf("plan: correlation depth %d not supported for %q", depth, x.Name)
	case *sqlparse.NumberLit:
		return bindNumber(x)
	case *sqlparse.StringLit:
		return &Const{Val: mtypes.NewString(x.Val)}, nil
	case *sqlparse.DateLit:
		d, err := mtypes.ParseDate(x.Val)
		if err != nil {
			return nil, err
		}
		return &Const{Val: mtypes.NewDate(d)}, nil
	case *sqlparse.NullLit:
		return &Const{Val: mtypes.NullValue(mtypes.Varchar)}, nil
	case *sqlparse.BoolLit:
		return &Const{Val: mtypes.NewBool(x.Val)}, nil
	case *sqlparse.ParamRef:
		if x.Ordinal > len(b.params) {
			return nil, fmt.Errorf("plan: missing value for parameter %d", x.Ordinal)
		}
		return &Const{Val: b.params[x.Ordinal-1]}, nil
	case *sqlparse.IntervalLit:
		// Bare interval: only valid inside date arithmetic, handled there.
		return nil, fmt.Errorf("plan: INTERVAL literal outside date arithmetic")
	case *sqlparse.BinaryExpr:
		return b.bindBinary(x, s)
	case *sqlparse.UnaryExpr:
		e, err := b.bindExpr(x.E, s)
		if err != nil {
			return nil, err
		}
		if x.Op == "NOT" {
			return &NotExpr{E: e}, nil
		}
		return FoldConst(&FuncExpr{Kind: FuncNeg, Args: []Expr{e}, Typ: e.Type()}).(Expr), nil
	case *sqlparse.FuncCall:
		if x.Over != nil {
			return b.bindWindowCall(x)
		}
		return b.bindFunc(x, s)
	case *sqlparse.CaseExpr:
		return b.bindCase(x, s)
	case *sqlparse.CastExpr:
		e, err := b.bindExpr(x.E, s)
		if err != nil {
			return nil, err
		}
		to, err := typeFromAST(x.TypeName, x.Prec, x.Scale, x.Width)
		if err != nil {
			return nil, err
		}
		return FoldConst(&CastExpr{E: e, To: to}), nil
	case *sqlparse.LikeExpr:
		e, err := b.bindExpr(x.E, s)
		if err != nil {
			return nil, err
		}
		pat, err := b.bindExpr(x.Pattern, s)
		if err != nil {
			return nil, err
		}
		pc, ok := pat.(*Const)
		if !ok || pc.Val.Typ.Kind != mtypes.KVarchar {
			return nil, fmt.Errorf("plan: LIKE pattern must be a string constant")
		}
		return &LikeExpr{E: e, Pattern: pc.Val.S, Not: x.Not}, nil
	case *sqlparse.InExpr:
		if x.Subquery != nil {
			return nil, fmt.Errorf("plan: IN (subquery) only supported as a top-level WHERE conjunct")
		}
		e, err := b.bindExpr(x.E, s)
		if err != nil {
			return nil, err
		}
		var vals []mtypes.Value
		for _, item := range x.List {
			ie, err := b.bindExpr(item, s)
			if err != nil {
				return nil, err
			}
			c, ok := FoldConst(ie).(*Const)
			if !ok {
				return nil, fmt.Errorf("plan: IN list elements must be constants")
			}
			vals = append(vals, c.Val)
		}
		return &InListExpr{E: e, Vals: vals, Not: x.Not}, nil
	case *sqlparse.BetweenExpr:
		e, err := b.bindExpr(x.E, s)
		if err != nil {
			return nil, err
		}
		lo, err := b.bindExpr(x.Lo, s)
		if err != nil {
			return nil, err
		}
		hi, err := b.bindExpr(x.Hi, s)
		if err != nil {
			return nil, err
		}
		return &BetweenExpr{E: e, Lo: FoldConst(lo), Hi: FoldConst(hi), Not: x.Not}, nil
	case *sqlparse.IsNullExpr:
		e, err := b.bindExpr(x.E, s)
		if err != nil {
			return nil, err
		}
		return &IsNullExpr{E: e, Not: x.Not}, nil
	case *sqlparse.ExtractExpr:
		e, err := b.bindExpr(x.E, s)
		if err != nil {
			return nil, err
		}
		return FoldConst(extractExpr(x.Field, e)), nil
	case *sqlparse.SubstringExpr:
		e, err := b.bindExpr(x.E, s)
		if err != nil {
			return nil, err
		}
		from, err := b.bindExpr(x.From, s)
		if err != nil {
			return nil, err
		}
		args := []Expr{e, from}
		if x.For != nil {
			f, err := b.bindExpr(x.For, s)
			if err != nil {
				return nil, err
			}
			args = append(args, f)
		}
		return &FuncExpr{Kind: FuncSubstring, Args: args, Typ: mtypes.Varchar}, nil
	case *sqlparse.ExistsExpr:
		return nil, fmt.Errorf("plan: EXISTS only supported as a top-level WHERE conjunct")
	case *sqlparse.SubqueryExpr:
		// Uncorrelated scalar subquery used as a value.
		sub, err := b.bindSelect(x.Select, nil)
		if err != nil {
			return nil, err
		}
		sch := sub.Schema()
		if len(sch) != 1 {
			return nil, fmt.Errorf("plan: scalar subquery must return one column")
		}
		return &SubplanExpr{Plan: sub, Typ: sch[0].Typ}, nil
	}
	return nil, fmt.Errorf("plan: unsupported expression %T", ast)
}

func bindNumber(x *sqlparse.NumberLit) (Expr, error) {
	if x.IsFloat {
		var f float64
		if _, err := fmt.Sscanf(x.Text, "%g", &f); err != nil {
			return nil, fmt.Errorf("plan: invalid number %q", x.Text)
		}
		return &Const{Val: mtypes.NewDouble(f)}, nil
	}
	if dot := indexByte(x.Text, '.'); dot >= 0 {
		scale := len(x.Text) - dot - 1
		// Literals from float formatting can carry 17+ digits; clamp to a
		// scale int64 decimals can hold (rounding the excess).
		if scale > 12 {
			scale = 12
		}
		v, err := mtypes.ParseDecimal(x.Text, scale)
		if err != nil {
			return nil, err
		}
		return &Const{Val: mtypes.NewDecimal(18, scale, v)}, nil
	}
	var n int64
	if _, err := fmt.Sscanf(x.Text, "%d", &n); err != nil {
		return nil, fmt.Errorf("plan: invalid integer %q", x.Text)
	}
	if n >= -(1<<31) && n < 1<<31 {
		return &Const{Val: mtypes.NewInt(mtypes.Int, n)}, nil
	}
	return &Const{Val: mtypes.NewInt(mtypes.BigInt, n)}, nil
}

func indexByte(s string, b byte) int {
	for i := 0; i < len(s); i++ {
		if s[i] == b {
			return i
		}
	}
	return -1
}

func (b *binder) bindBinary(x *sqlparse.BinaryExpr, s *scope) (Expr, error) {
	// Date +/- INTERVAL handled specially (constant-folds when possible).
	if x.Op == "+" || x.Op == "-" {
		if iv, ok := x.R.(*sqlparse.IntervalLit); ok {
			l, err := b.bindExpr(x.L, s)
			if err != nil {
				return nil, err
			}
			return bindDateInterval(l, x.Op, iv)
		}
		if iv, ok := x.L.(*sqlparse.IntervalLit); ok && x.Op == "+" {
			r, err := b.bindExpr(x.R, s)
			if err != nil {
				return nil, err
			}
			return bindDateInterval(r, "+", iv)
		}
	}
	l, err := b.bindExpr(x.L, s)
	if err != nil {
		return nil, err
	}
	r, err := b.bindExpr(x.R, s)
	if err != nil {
		return nil, err
	}
	return makeBinOp(x.Op, l, r)
}

func bindDateInterval(e Expr, op string, iv *sqlparse.IntervalLit) (Expr, error) {
	n := iv.N
	if op == "-" {
		n = -n
	}
	if c, ok := FoldConst(e).(*Const); ok && c.Val.Typ.Kind == mtypes.KDate && !c.Val.Null {
		d := int32(c.Val.I)
		switch iv.Unit {
		case "DAY":
			d += int32(n)
		case "MONTH":
			d = mtypes.AddMonths(d, int(n))
		case "YEAR":
			d = mtypes.AddMonths(d, int(n)*12)
		}
		return &Const{Val: mtypes.NewDate(d)}, nil
	}
	if e.Type().Kind != mtypes.KDate {
		return nil, fmt.Errorf("plan: %s interval arithmetic requires a DATE operand, got %s", iv.Unit, e.Type())
	}
	switch iv.Unit {
	case "DAY":
		days := &Const{Val: mtypes.NewInt(mtypes.Int, n)}
		return &BinOp{Kind: BinArith, Arith: vec.OpAdd, L: e, R: days, Typ: mtypes.Date}, nil
	case "MONTH", "YEAR":
		months := n
		if iv.Unit == "YEAR" {
			months *= 12
		}
		return &FuncExpr{
			Kind: FuncAddMonths,
			Args: []Expr{e, &Const{Val: mtypes.NewInt(mtypes.Int, months)}},
			Typ:  mtypes.Date,
		}, nil
	default:
		return nil, fmt.Errorf("plan: unsupported interval unit %s", iv.Unit)
	}
}

// makeBinOp type-checks and constant-folds a bound binary operation.
func makeBinOp(op string, l, r Expr) (Expr, error) {
	switch op {
	case "AND":
		return &BinOp{Kind: BinAnd, L: l, R: r, Typ: mtypes.Bool}, nil
	case "OR":
		return &BinOp{Kind: BinOr, L: l, R: r, Typ: mtypes.Bool}, nil
	case "||":
		return FoldConst(&BinOp{Kind: BinConcat, L: l, R: r, Typ: mtypes.Varchar}), nil
	case "=", "<>", "<", "<=", ">", ">=":
		var cmp vec.CmpOp
		switch op {
		case "=":
			cmp = vec.CmpEq
		case "<>":
			cmp = vec.CmpNe
		case "<":
			cmp = vec.CmpLt
		case "<=":
			cmp = vec.CmpLe
		case ">":
			cmp = vec.CmpGt
		default:
			cmp = vec.CmpGe
		}
		l2, r2, err := alignComparable(l, r)
		if err != nil {
			return nil, err
		}
		return FoldConst(&BinOp{Kind: BinCmp, Cmp: cmp, L: l2, R: r2, Typ: mtypes.Bool}), nil
	case "+", "-", "*", "/", "%":
		var ar vec.ArithOp
		switch op {
		case "+":
			ar = vec.OpAdd
		case "-":
			ar = vec.OpSub
		case "*":
			ar = vec.OpMul
		case "/":
			ar = vec.OpDiv
		default:
			ar = vec.OpMod
		}
		// An untyped NULL (bare NULL literal or nil parameter) adopts the
		// other operand's type; otherwise a nil bound to a numeric column
		// fails the numeric check below as a spurious VARCHAR.
		if n, ok := retypeNullConst(l, r.Type()); ok {
			l = n
		} else if n, ok := retypeNullConst(r, l.Type()); ok {
			r = n
		}
		lt, rt := l.Type(), r.Type()
		if !lt.IsNumeric() && lt.Kind != mtypes.KDate || !rt.IsNumeric() && rt.Kind != mtypes.KDate {
			return nil, fmt.Errorf("plan: cannot apply %s to %s and %s", op, lt, rt)
		}
		typ := vec.ArithResultType(ar, lt, rt)
		return FoldConst(&BinOp{Kind: BinArith, Arith: ar, L: l, R: r, Typ: typ}), nil
	}
	return nil, fmt.Errorf("plan: unknown operator %q", op)
}

// retypeNullConst rewrites an untyped NULL constant — a bare NULL literal or
// a nil query parameter, both of which bind as a VARCHAR null — to carry the
// type `to`, so NULL participates in comparisons and arithmetic against any
// column kind. Non-null constants and already-typed expressions are left
// alone.
func retypeNullConst(e Expr, to mtypes.Type) (Expr, bool) {
	c, ok := e.(*Const)
	if !ok || !c.Val.Null || c.Val.Typ.Kind != mtypes.KVarchar || to.Kind == mtypes.KVarchar {
		return e, false
	}
	return &Const{Val: mtypes.NullValue(to)}, true
}

// alignComparable validates a comparison's operand types, casting string
// constants to dates when compared against DATE columns.
func alignComparable(l, r Expr) (Expr, Expr, error) {
	if n, ok := retypeNullConst(l, r.Type()); ok {
		l = n
	} else if n, ok := retypeNullConst(r, l.Type()); ok {
		r = n
	}
	lt, rt := l.Type(), r.Type()
	if lt.Kind == mtypes.KDate && rt.Kind == mtypes.KVarchar {
		if c, ok := r.(*Const); ok && !c.Val.Null {
			d, err := mtypes.ParseDate(c.Val.S)
			if err != nil {
				return nil, nil, err
			}
			return l, &Const{Val: mtypes.NewDate(d)}, nil
		}
	}
	if rt.Kind == mtypes.KDate && lt.Kind == mtypes.KVarchar {
		if c, ok := l.(*Const); ok && !c.Val.Null {
			d, err := mtypes.ParseDate(c.Val.S)
			if err != nil {
				return nil, nil, err
			}
			return &Const{Val: mtypes.NewDate(d)}, r, nil
		}
	}
	lComp := lt.IsNumeric() || lt.Kind == mtypes.KDate || lt.Kind == mtypes.KBool
	rComp := rt.IsNumeric() || rt.Kind == mtypes.KDate || rt.Kind == mtypes.KBool
	if lt.Kind == mtypes.KVarchar && rt.Kind == mtypes.KVarchar {
		return l, r, nil
	}
	if lComp && rComp {
		return l, r, nil
	}
	return nil, nil, fmt.Errorf("plan: cannot compare %s with %s", lt, rt)
}

func (b *binder) bindFunc(x *sqlparse.FuncCall, s *scope) (Expr, error) {
	if _, isAgg := aggNames[x.Name]; isAgg {
		return nil, fmt.Errorf("plan: aggregate %q not allowed here", x.Name)
	}
	var kind FuncKind
	var typ mtypes.Type
	switch x.Name {
	case "sqrt":
		kind, typ = FuncSqrt, mtypes.Double
	case "abs":
		if len(x.Args) != 1 {
			return nil, fmt.Errorf("plan: abs takes one argument")
		}
		a, err := b.bindExpr(x.Args[0], s)
		if err != nil {
			return nil, err
		}
		return FoldConst(&FuncExpr{Kind: FuncAbs, Args: []Expr{a}, Typ: a.Type()}), nil
	case "upper", "ucase":
		kind, typ = FuncUpper, mtypes.Varchar
	case "lower", "lcase":
		kind, typ = FuncLower, mtypes.Varchar
	case "concat":
		kind, typ = FuncConcat, mtypes.Varchar
	case "substring", "substr":
		kind, typ = FuncSubstring, mtypes.Varchar
	default:
		return nil, fmt.Errorf("plan: unknown function %q", x.Name)
	}
	args := make([]Expr, len(x.Args))
	for i, a := range x.Args {
		e, err := b.bindExpr(a, s)
		if err != nil {
			return nil, err
		}
		args[i] = e
	}
	return FoldConst(&FuncExpr{Kind: kind, Args: args, Typ: typ}), nil
}

func (b *binder) bindCase(x *sqlparse.CaseExpr, s *scope) (Expr, error) {
	ce := &CaseExpr{}
	var operand Expr
	var err error
	if x.Operand != nil {
		operand, err = b.bindExpr(x.Operand, s)
		if err != nil {
			return nil, err
		}
	}
	for _, w := range x.Whens {
		var cond Expr
		if operand != nil {
			r, err := b.bindExpr(w.Cond, s)
			if err != nil {
				return nil, err
			}
			cond, err = makeBinOp("=", operand, r)
			if err != nil {
				return nil, err
			}
		} else {
			cond, err = b.bindExpr(w.Cond, s)
			if err != nil {
				return nil, err
			}
		}
		res, err := b.bindExpr(w.Result, s)
		if err != nil {
			return nil, err
		}
		ce.Whens = append(ce.Whens, WhenClause{Cond: cond, Result: res})
	}
	if x.Else != nil {
		ce.Else, err = b.bindExpr(x.Else, s)
		if err != nil {
			return nil, err
		}
	}
	ce.Typ = caseResultType(ce)
	return ce, nil
}

// caseResultType unifies the WHEN/ELSE result types (DOUBLE dominates,
// DECIMAL beats integers at the max scale, otherwise the first branch wins).
func caseResultType(ce *CaseExpr) mtypes.Type {
	var ts []mtypes.Type
	for _, w := range ce.Whens {
		ts = append(ts, w.Result.Type())
	}
	if ce.Else != nil {
		ts = append(ts, ce.Else.Type())
	}
	out := ts[0]
	for _, t := range ts[1:] {
		switch {
		case t.Kind == mtypes.KDouble || out.Kind == mtypes.KDouble:
			out = mtypes.Double
		case t.Kind == mtypes.KDecimal && out.Kind == mtypes.KDecimal:
			if t.Scale > out.Scale {
				out = t
			}
		case t.Kind == mtypes.KDecimal && out.IsInteger():
			out = t
		case out.Kind == mtypes.KDecimal && t.IsInteger():
			// keep out
		case t.Kind == mtypes.KBigInt && out.IsInteger():
			out = t
		}
	}
	return out
}

func extractExpr(field string, e Expr) Expr {
	kind := FuncExtractYear
	switch field {
	case "MONTH":
		kind = FuncExtractMonth
	case "DAY":
		kind = FuncExtractDay
	}
	return &FuncExpr{Kind: kind, Args: []Expr{e}, Typ: mtypes.Int}
}

func typeFromAST(name string, prec, scale, width int) (mtypes.Type, error) {
	kind := mtypes.ParseTypeName(name)
	if kind == mtypes.KUnknown {
		return mtypes.Type{}, fmt.Errorf("plan: unknown type %q", name)
	}
	t := mtypes.Type{Kind: kind}
	if kind == mtypes.KDecimal {
		t.Prec, t.Scale = prec, scale
		if t.Prec == 0 {
			t.Prec = 18
		}
	}
	if kind == mtypes.KVarchar {
		t.Width = width
	}
	return t, nil
}

// castTo wraps e in a cast when its type differs from the target.
func castTo(e Expr, to mtypes.Type) Expr {
	if e.Type() == to {
		return e
	}
	return FoldConst(&CastExpr{E: e, To: to})
}

// ---------------------------------------------------------------------------
// Subquery decorrelation (paper: the relational-level rewrites MonetDB
// performs before MAL generation).
// ---------------------------------------------------------------------------

// subqueryParts binds a subquery's FROM and splits its WHERE conjuncts into
// correlated equi-pairs (outer expr, inner expr), other correlated residuals
// and purely local filters (already applied to the returned plan).
type subqueryParts struct {
	plan      Node
	s         *scope
	corrOuter []Expr // over outer schema
	corrInner []Expr // over inner schema
	residual  []Expr // correlated non-equi conjuncts over (outer ++ inner)
}

func (b *binder) bindSubqueryParts(sel *sqlparse.SelectStmt, outer *scope) (*subqueryParts, error) {
	if len(sel.GroupBy) > 0 || sel.Having != nil || len(sel.OrderBy) > 0 || sel.Limit >= 0 {
		return nil, fmt.Errorf("plan: correlated subqueries must be plain SELECT ... FROM ... WHERE")
	}
	// Bind FROM with the outer scope as parent.
	inner := &scope{parent: outer}
	var plan Node
	for _, ref := range sel.From {
		n, cols, err := b.bindTableRef(ref, outer)
		if err != nil {
			return nil, err
		}
		if plan == nil {
			plan = n
		} else {
			plan = &Join{Kind: JoinInner, Left: plan, Right: n}
		}
		inner.cols = append(inner.cols, cols...)
	}
	parts := &subqueryParts{plan: plan, s: inner}
	if sel.Where == nil {
		return parts, nil
	}
	for _, c := range splitConjuncts(sel.Where) {
		e, err := b.bindExpr(c, inner)
		if err != nil {
			return nil, err
		}
		if !hasOuterRef(e) {
			parts.plan = &Filter{Input: parts.plan, Pred: e}
			continue
		}
		// Correlated: try outerExpr = innerExpr.
		if bo, ok := e.(*BinOp); ok && bo.Kind == BinCmp && bo.Cmp == vec.CmpEq {
			lOuter, lInner := hasOuterRef(bo.L), hasOuterRef(bo.R)
			switch {
			case lOuter && !lInner && onlyOuterRefs(bo.L):
				parts.corrOuter = append(parts.corrOuter, outerToColRef(bo.L))
				parts.corrInner = append(parts.corrInner, bo.R)
				continue
			case lInner && !lOuter && onlyOuterRefs(bo.R):
				parts.corrOuter = append(parts.corrOuter, outerToColRef(bo.R))
				parts.corrInner = append(parts.corrInner, bo.L)
				continue
			}
		}
		parts.residual = append(parts.residual, e)
	}
	return parts, nil
}

func hasOuterRef(e Expr) bool {
	found := false
	WalkExpr(e, func(x Expr) bool {
		if _, ok := x.(*outerRef); ok {
			found = true
		}
		return !found
	})
	return found
}

// onlyOuterRefs reports whether every column reference in e is an outerRef.
func onlyOuterRefs(e Expr) bool {
	ok := true
	WalkExpr(e, func(x Expr) bool {
		if _, isCol := x.(*ColRef); isCol {
			ok = false
		}
		return ok
	})
	return ok
}

// outerToColRef rewrites outerRef markers into ColRefs over the outer schema.
func outerToColRef(e Expr) Expr {
	switch x := e.(type) {
	case *outerRef:
		return &ColRef{Slot: x.Slot, Typ: x.Typ, Name: x.Name}
	case *BinOp:
		c := *x
		c.L, c.R = outerToColRef(x.L), outerToColRef(x.R)
		return &c
	case *FuncExpr:
		c := *x
		c.Args = make([]Expr, len(x.Args))
		for i, a := range x.Args {
			c.Args[i] = outerToColRef(a)
		}
		return &c
	case *CastExpr:
		return &CastExpr{E: outerToColRef(x.E), To: x.To}
	default:
		return e
	}
}

// rebaseMixedExpr rewrites a correlated residual over (outer ++ inner):
// outerRefs keep their slots, inner ColRefs shift by nOuter.
func rebaseMixedExpr(e Expr, nOuter int) Expr {
	shifted := MapSlots(e, func(s int) int { return s + nOuter })
	return replaceOuterRefs(shifted)
}

func replaceOuterRefs(e Expr) Expr {
	switch x := e.(type) {
	case *outerRef:
		return &ColRef{Slot: x.Slot, Typ: x.Typ, Name: x.Name}
	case *BinOp:
		c := *x
		c.L, c.R = replaceOuterRefs(x.L), replaceOuterRefs(x.R)
		return &c
	case *NotExpr:
		return &NotExpr{E: replaceOuterRefs(x.E)}
	case *IsNullExpr:
		return &IsNullExpr{E: replaceOuterRefs(x.E), Not: x.Not}
	case *BetweenExpr:
		c := *x
		c.E, c.Lo, c.Hi = replaceOuterRefs(x.E), replaceOuterRefs(x.Lo), replaceOuterRefs(x.Hi)
		return &c
	case *FuncExpr:
		c := *x
		c.Args = make([]Expr, len(x.Args))
		for i, a := range x.Args {
			c.Args[i] = replaceOuterRefs(a)
		}
		return &c
	case *CastExpr:
		return &CastExpr{E: replaceOuterRefs(x.E), To: x.To}
	default:
		return e
	}
}

// bindExists turns [NOT] EXISTS(corr-subquery) into a semi/anti join.
func (b *binder) bindExists(outerPlan Node, s *scope, sub *sqlparse.SelectStmt, anti bool) (Node, error) {
	parts, err := b.bindSubqueryParts(sub, s)
	if err != nil {
		return nil, err
	}
	kind := JoinSemi
	if anti {
		kind = JoinAnti
	}
	j := &Join{Kind: kind, Left: outerPlan, Right: parts.plan, EquiL: parts.corrOuter, EquiR: parts.corrInner}
	nOuter := len(s.cols)
	for _, res := range parts.residual {
		j.Residual = andExpr(j.Residual, rebaseMixedExpr(res, nOuter))
	}
	if len(j.EquiL) == 0 && j.Residual == nil {
		return nil, fmt.Errorf("plan: uncorrelated EXISTS is not supported")
	}
	return j, nil
}

// bindInSubquery turns expr [NOT] IN (SELECT col ...) into a semi/anti join.
func (b *binder) bindInSubquery(outerPlan Node, s *scope, x *sqlparse.InExpr) (Node, error) {
	if len(x.Subquery.Items) != 1 || x.Subquery.Items[0].Star {
		return nil, fmt.Errorf("plan: IN subquery must select exactly one column")
	}
	// Uncorrelated subqueries get the full binder (GROUP BY, HAVING and
	// nested subqueries allowed) and join on the single output column.
	if !selectIsCorrelated(x.Subquery, s, b) {
		outerE, err := b.bindExpr(x.E, s)
		if err != nil {
			return nil, err
		}
		subPlan, err := b.bindSelect(x.Subquery, nil)
		if err != nil {
			return nil, err
		}
		sch := subPlan.Schema()
		kind := JoinSemi
		if x.Not {
			kind = JoinAnti
		}
		return &Join{
			Kind:  kind,
			Left:  outerPlan,
			Right: subPlan,
			EquiL: []Expr{outerE},
			EquiR: []Expr{&ColRef{Slot: 0, Typ: sch[0].Typ, Name: sch[0].Name}},
		}, nil
	}
	parts, err := b.bindSubqueryParts(x.Subquery, s)
	if err != nil {
		return nil, err
	}
	innerCol, err := b.bindExpr(x.Subquery.Items[0].Expr, parts.s)
	if err != nil {
		return nil, err
	}
	outerE, err := b.bindExpr(x.E, s)
	if err != nil {
		return nil, err
	}
	kind := JoinSemi
	if x.Not {
		// NOT IN with NULLs in the subquery result would be three-valued;
		// anti join matches when neither side produces NULL keys, which the
		// executor enforces by excluding NULL keys from hash tables.
		kind = JoinAnti
	}
	j := &Join{
		Kind:  kind,
		Left:  outerPlan,
		Right: parts.plan,
		EquiL: append([]Expr{outerE}, parts.corrOuter...),
		EquiR: append([]Expr{innerCol}, parts.corrInner...),
	}
	nOuter := len(s.cols)
	for _, res := range parts.residual {
		j.Residual = andExpr(j.Residual, rebaseMixedExpr(res, nOuter))
	}
	return j, nil
}

// bindScalarSubqueryCmp decorrelates `outerExpr CMP (SELECT agg(x) FROM ...
// WHERE corr)` into a grouped join (the classic Q2 rewrite):
//
//	Aggregate(inner, GROUP BY corrInner, agg) JOIN outer
//	    ON corrOuter = group keys, FILTER outerExpr CMP aggResult.
func (b *binder) bindScalarSubqueryCmp(outerPlan Node, s *scope, lhs sqlparse.Expr, op string, sub *sqlparse.SelectStmt) (Node, error) {
	// Uncorrelated scalar subquery: plain filter with a subplan constant.
	if !selectIsCorrelated(sub, s, b) {
		l, err := b.bindExpr(lhs, s)
		if err != nil {
			return nil, err
		}
		subPlan, err := b.bindSelect(sub, nil)
		if err != nil {
			return nil, err
		}
		sch := subPlan.Schema()
		if len(sch) != 1 {
			return nil, fmt.Errorf("plan: scalar subquery must return one column")
		}
		pred, err := makeBinOp(op, l, &SubplanExpr{Plan: subPlan, Typ: sch[0].Typ})
		if err != nil {
			return nil, err
		}
		return &Filter{Input: outerPlan, Pred: pred}, nil
	}

	if len(sub.Items) != 1 {
		return nil, fmt.Errorf("plan: scalar subquery must select exactly one expression")
	}
	if !containsAgg(sub.Items[0].Expr) {
		return nil, fmt.Errorf("plan: correlated scalar subqueries must compute an aggregate")
	}
	parts, err := b.bindSubqueryParts(sub, s)
	if err != nil {
		return nil, err
	}
	if len(parts.corrOuter) == 0 {
		return nil, fmt.Errorf("plan: correlated scalar subquery needs equality correlation")
	}
	if len(parts.residual) > 0 {
		return nil, fmt.Errorf("plan: non-equality correlation in scalar subqueries is not supported")
	}
	// Build the grouped aggregate keyed by the inner correlation columns. The
	// item may be an expression over aggregate calls (Q17's 0.2*avg(...)):
	// each call becomes an output of the Aggregate and the surrounding
	// expression is rebuilt over the join-output slots where those land.
	nOuter := len(s.cols)
	var aggs []AggCall
	r, err := b.bindCorrAggItem(sub.Items[0].Expr, parts.s, &aggs, nOuter+len(parts.corrInner))
	if err != nil {
		return nil, err
	}
	names := make([]string, len(parts.corrInner))
	for i := range names {
		names[i] = fmt.Sprintf("k%d", i)
	}
	agg := &Aggregate{
		Input:   parts.plan,
		GroupBy: parts.corrInner,
		Aggs:    aggs,
		Names:   names,
	}
	// Join outer with the grouped result on the correlation keys.
	equiR := make([]Expr, len(parts.corrInner))
	for i, g := range parts.corrInner {
		equiR[i] = &ColRef{Slot: i, Typ: g.Type(), Name: names[i]}
	}
	j := &Join{Kind: JoinInner, Left: outerPlan, Right: agg, EquiL: parts.corrOuter, EquiR: equiR}
	// Filter: outerExpr CMP the rebuilt item expression.
	l, err := b.bindExpr(lhs, s)
	if err != nil {
		return nil, err
	}
	pred, err := makeBinOp(op, l, r)
	if err != nil {
		return nil, err
	}
	// Project away the helper columns so the outer schema is preserved.
	filtered := &Filter{Input: j, Pred: pred}
	exprs := make([]Expr, nOuter)
	out := make(Schema, nOuter)
	for i, c := range s.cols {
		exprs[i] = &ColRef{Slot: i, Typ: c.typ, Name: c.name}
		out[i] = ColInfo{Qual: c.qual, Name: c.name, Typ: c.typ}
	}
	return &Project{Input: filtered, Exprs: exprs, Out: out}, nil
}

// bindCorrAggItem binds the select item of a correlated scalar subquery.
// Every aggregate call is appended to aggs (its argument bound over the inner
// scope) and replaced by a ColRef to the join-output slot base+k where the
// k-th aggregate result will sit; the rest of the expression must be built
// from constants so it stays valid above the Aggregate.
func (b *binder) bindCorrAggItem(ast sqlparse.Expr, inner *scope, aggs *[]AggCall, base int) (Expr, error) {
	if fc, ok := isAggCall(ast); ok {
		var arg Expr
		kind := aggNames[fc.Name]
		if fc.Star {
			kind = vec.AggCountStar
		} else {
			if len(fc.Args) != 1 {
				return nil, fmt.Errorf("plan: aggregate %s takes one argument", fc.Name)
			}
			var err error
			arg, err = b.bindExpr(fc.Args[0], inner)
			if err != nil {
				return nil, err
			}
		}
		call := AggCall{Kind: kind, Arg: arg, Name: fc.Name}
		slot := base + len(*aggs)
		*aggs = append(*aggs, call)
		return &ColRef{Slot: slot, Typ: aggType(call), Name: fc.Name}, nil
	}
	if !containsAgg(ast) {
		e, err := b.bindExpr(ast, inner)
		if err != nil {
			return nil, err
		}
		constOK := true
		WalkExpr(e, func(x Expr) bool {
			switch x.(type) {
			case *ColRef, *outerRef, *AggRef:
				constOK = false
			}
			return constOK
		})
		if !constOK {
			return nil, fmt.Errorf("plan: correlated scalar subquery item must combine aggregates and constants")
		}
		return e, nil
	}
	switch x := ast.(type) {
	case *sqlparse.BinaryExpr:
		l, err := b.bindCorrAggItem(x.L, inner, aggs, base)
		if err != nil {
			return nil, err
		}
		r, err := b.bindCorrAggItem(x.R, inner, aggs, base)
		if err != nil {
			return nil, err
		}
		return makeBinOp(x.Op, l, r)
	case *sqlparse.UnaryExpr:
		e, err := b.bindCorrAggItem(x.E, inner, aggs, base)
		if err != nil {
			return nil, err
		}
		if x.Op == "NOT" {
			return &NotExpr{E: e}, nil
		}
		return &FuncExpr{Kind: FuncNeg, Args: []Expr{e}, Typ: e.Type()}, nil
	case *sqlparse.CastExpr:
		e, err := b.bindCorrAggItem(x.E, inner, aggs, base)
		if err != nil {
			return nil, err
		}
		to, err := typeFromAST(x.TypeName, x.Prec, x.Scale, x.Width)
		if err != nil {
			return nil, err
		}
		return &CastExpr{E: e, To: to}, nil
	}
	return nil, fmt.Errorf("plan: unsupported expression %T over aggregate in scalar subquery", ast)
}

// selectIsCorrelated reports whether sub references columns of s.
func selectIsCorrelated(sub *sqlparse.SelectStmt, s *scope, b *binder) bool {
	// Collect the subquery's own column names and table aliases.
	localCols := map[string]bool{}
	localQuals := map[string]bool{}
	var collect func(refs []sqlparse.TableRef)
	collect = func(refs []sqlparse.TableRef) {
		for _, ref := range refs {
			switch x := ref.(type) {
			case *sqlparse.BaseTable:
				alias := x.Alias
				if alias == "" {
					alias = x.Name
				}
				localQuals[alias] = true
				if meta, ok := b.cat.TableMeta(x.Name); ok {
					for _, c := range meta.Cols {
						localCols[c.Name] = true
					}
				}
			case *sqlparse.JoinRef:
				collect([]sqlparse.TableRef{x.Left, x.Right})
			case *sqlparse.SubqueryRef:
				localQuals[x.Alias] = true
				for _, it := range x.Select.Items {
					if it.Alias != "" {
						localCols[it.Alias] = true
					}
				}
			}
		}
	}
	collect(sub.From)
	correlated := false
	walkAST(sub.Where, func(e sqlparse.Expr) bool {
		if id, ok := e.(*sqlparse.Ident); ok {
			isLocal := false
			if id.Qualifier != "" {
				isLocal = localQuals[id.Qualifier]
			} else {
				isLocal = localCols[id.Name]
			}
			if !isLocal {
				if _, _, _, err := s.resolve(id.Qualifier, id.Name); err == nil {
					correlated = true
				}
			}
		}
		return !correlated
	})
	return correlated
}
