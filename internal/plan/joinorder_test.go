package plan

import (
	"math/rand"
	"reflect"
	"testing"
)

// permCost prices a left-deep permutation with the same C_out model the DP
// and greedy paths share: the sum of every intermediate (and final) result
// cardinality. Base relations are free, matching dpJoinOrder.
func permCost(g *joinGraph, perm []int) float64 {
	set := uint(1) << perm[0]
	card := g.cards[perm[0]]
	cost := 0.0
	for _, j := range perm[1:] {
		card = g.extendCard(card, set, j)
		set |= 1 << j
		cost += card
	}
	return cost
}

// corpusGraph builds one of the named small-graph shapes whose optimal
// left-deep order greedy provably finds (well-separated cardinalities, one
// clearly best extension at every step).
func corpusGraph(shape string) *joinGraph {
	switch shape {
	case "chain": // dim(10) - mid(1e3) - fact(1e6), key joins along the chain
		g := newJoinGraph([]float64{1e6, 1e3, 10})
		g.addEdge(0, 1, 1e-3)
		g.addEdge(1, 2, 1e-1)
		return g
	case "star":
		// fact(1e6) in the center, three filtered dims. The dims are big
		// enough that a dim x dim cross product (which the DP may exploit
		// on tiny dimensions) always loses to following the key edges.
		g := newJoinGraph([]float64{1e6, 1e3, 2e3, 4e3})
		g.addEdge(0, 1, 1e-4)
		g.addEdge(0, 2, 1e-4)
		g.addEdge(0, 3, 1e-4)
		return g
	case "snowflake": // star with one dim refining into a sub-dimension
		g := newJoinGraph([]float64{1e6, 1e3, 50, 1e4})
		g.addEdge(0, 1, 1e-3)
		g.addEdge(1, 2, 1.0/50)
		g.addEdge(0, 3, 1e-4)
		return g
	case "clique": // every pair joinable, cardinalities force one order
		g := newJoinGraph([]float64{1e5, 1e3, 10, 1e4})
		for a := 0; a < 4; a++ {
			for b := a + 1; b < 4; b++ {
				g.addEdge(a, b, 1e-3)
			}
		}
		return g
	}
	panic("unknown shape " + shape)
}

// TestDPGreedyAgreeOnCorpus is the agreement corpus: on these shapes the
// greedy heuristic is optimal, so the DP (exact) and greedy paths must
// produce cost-identical orders — and, since the costs are well-separated,
// the identical permutation. A divergence means one of the two shared-cost
// helpers (cardOfSet/extendCard) regressed for one path only.
func TestDPGreedyAgreeOnCorpus(t *testing.T) {
	for _, shape := range []string{"chain", "star", "snowflake", "clique"} {
		g := corpusGraph(shape)
		dp := dpJoinOrder(g)
		gr := greedyJoinOrder(g)
		dc, gc := permCost(g, dp), permCost(g, gr)
		if dc != gc {
			t.Errorf("%s: dp cost %g (perm %v) != greedy cost %g (perm %v)",
				shape, dc, dp, gc, gr)
			continue
		}
		if !reflect.DeepEqual(dp, gr) {
			t.Errorf("%s: equal cost but different perms: dp %v greedy %v", shape, dp, gr)
		}
	}
}

// TestDPNeverWorseThanGreedy fuzzes random join graphs: the exact DP must
// never price worse than the heuristic under the shared cost model, and
// both must return valid permutations.
func TestDPNeverWorseThanGreedy(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for iter := 0; iter < 500; iter++ {
		n := 2 + rng.Intn(7)
		cards := make([]float64, n)
		for i := range cards {
			cards[i] = math10(rng, 1, 6)
		}
		g := newJoinGraph(cards)
		// Random spanning tree keeps the graph connected; extra edges at
		// random make some instances cyclic.
		for i := 1; i < n; i++ {
			g.addEdge(i, rng.Intn(i), math10(rng, -5, -1))
		}
		for e := rng.Intn(n); e > 0; e-- {
			a, b := rng.Intn(n), rng.Intn(n)
			if a != b {
				g.addEdge(a, b, math10(rng, -5, -1))
			}
		}
		dp := dpJoinOrder(g)
		gr := greedyJoinOrder(g)
		for _, perm := range [][]int{dp, gr} {
			seen := make([]bool, n)
			for _, j := range perm {
				if j < 0 || j >= n || seen[j] {
					t.Fatalf("iter %d: invalid permutation %v", iter, perm)
				}
				seen[j] = true
			}
		}
		dc, gc := permCost(g, dp), permCost(g, gr)
		if dc > gc*(1+1e-9) {
			t.Fatalf("iter %d: dp cost %g worse than greedy %g (dp %v greedy %v, cards %v)",
				iter, dc, gc, dp, gr, cards)
		}
	}
}

// math10 returns a random power-of-ten-ish magnitude in [10^lo, 10^hi].
func math10(rng *rand.Rand, lo, hi int) float64 {
	exp := lo + rng.Intn(hi-lo+1)
	m := 1.0
	for ; exp > 0; exp-- {
		m *= 10
	}
	for ; exp < 0; exp++ {
		m /= 10
	}
	return m * (0.5 + rng.Float64())
}
