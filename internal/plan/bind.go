package plan

import (
	"fmt"
	"reflect"
	"strconv"
	"strings"

	"monetlite/internal/mtypes"
	"monetlite/internal/sqlparse"
	"monetlite/internal/storage"
	"monetlite/internal/vec"
)

// Catalog is the schema source the binder resolves table names against.
type Catalog interface {
	TableMeta(name string) (*storage.TableMeta, bool)
	// TableRows estimates the table's row count (join ordering heuristic).
	TableRows(name string) int64
}

// Bound statement forms.
type (
	// BoundQuery is a SELECT ready for execution.
	BoundQuery struct{ Plan Node }
	// BoundInsert inserts literal rows or a query result into a table.
	BoundInsert struct {
		Table  string
		Values []*vec.Vector // one vector per table column, fully coerced
		Query  Node          // alternatively, INSERT ... SELECT
	}
	// BoundDelete deletes the rows of Table satisfying Pred (nil = all).
	BoundDelete struct {
		Table string
		Pred  Expr // over the full table schema
	}
	// BoundUpdate rewrites matching rows (delete+append semantics).
	BoundUpdate struct {
		Table    string
		SetCols  []int  // table column indexes being assigned
		SetExprs []Expr // over the full table schema
		Pred     Expr
	}
)

// BindSelect binds a parsed SELECT into an optimized logical plan.
func BindSelect(cat Catalog, sel *sqlparse.SelectStmt, params []mtypes.Value) (*BoundQuery, error) {
	return BindSelectWith(cat, sel, params, OptOpts{})
}

// BindSelectWith is BindSelect with explicit optimizer options (e.g. the
// written-order baseline used by plan-quality tests).
func BindSelectWith(cat Catalog, sel *sqlparse.SelectStmt, params []mtypes.Value, opts OptOpts) (*BoundQuery, error) {
	b := &binder{cat: cat, params: params}
	n, err := b.bindSelect(sel, nil)
	if err != nil {
		return nil, err
	}
	return &BoundQuery{Plan: OptimizeWith(cat, n, opts)}, nil
}

// BindInsert binds an INSERT statement.
func BindInsert(cat Catalog, ins *sqlparse.InsertStmt, params []mtypes.Value) (*BoundInsert, error) {
	meta, ok := cat.TableMeta(ins.Table)
	if !ok {
		return nil, fmt.Errorf("plan: no such table %q", ins.Table)
	}
	// Column mapping: listed columns (or all, in order).
	colIdx := make([]int, 0, len(meta.Cols))
	if len(ins.Cols) == 0 {
		for i := range meta.Cols {
			colIdx = append(colIdx, i)
		}
	} else {
		for _, name := range ins.Cols {
			ci := meta.ColIndex(name)
			if ci < 0 {
				return nil, fmt.Errorf("plan: no column %q in table %q", name, ins.Table)
			}
			colIdx = append(colIdx, ci)
		}
	}
	b := &binder{cat: cat, params: params}
	if ins.Select != nil {
		n, err := b.bindSelect(ins.Select, nil)
		if err != nil {
			return nil, err
		}
		if len(n.Schema()) != len(colIdx) {
			return nil, fmt.Errorf("plan: INSERT SELECT arity mismatch: %d vs %d", len(n.Schema()), len(colIdx))
		}
		// Reorder/cast to full table schema.
		exprs := make([]Expr, len(meta.Cols))
		names := make([]string, len(meta.Cols))
		for i := range meta.Cols {
			exprs[i] = &Const{Val: mtypes.NullValue(meta.Cols[i].Typ)}
			names[i] = meta.Cols[i].Name
		}
		for k, ci := range colIdx {
			src := &ColRef{Slot: k, Typ: n.Schema()[k].Typ, Name: n.Schema()[k].Name}
			exprs[ci] = castTo(src, meta.Cols[ci].Typ)
		}
		out := make(Schema, len(meta.Cols))
		for i := range meta.Cols {
			out[i] = ColInfo{Name: names[i], Typ: meta.Cols[i].Typ}
		}
		return &BoundInsert{Table: ins.Table, Query: Optimize(cat, &Project{Input: n, Exprs: exprs, Out: out})}, nil
	}
	// Literal VALUES: evaluate each expression (must be constant).
	cols := make([]*vec.Vector, len(meta.Cols))
	for i, cd := range meta.Cols {
		cols[i] = vec.NewCap(cd.Typ, len(ins.Rows))
	}
	for _, row := range ins.Rows {
		if len(row) != len(colIdx) {
			return nil, fmt.Errorf("plan: INSERT row has %d values, want %d", len(row), len(colIdx))
		}
		provided := make(map[int]bool, len(colIdx))
		for k, ast := range row {
			ci := colIdx[k]
			provided[ci] = true
			e, err := b.bindExpr(ast, nil)
			if err != nil {
				return nil, err
			}
			if !IsConst(e) {
				return nil, fmt.Errorf("plan: INSERT values must be constants")
			}
			v, err := EvalRow(e, &EvalCtx{})
			if err != nil {
				return nil, err
			}
			cv, err := CastValue(v, meta.Cols[ci].Typ)
			if err != nil {
				return nil, fmt.Errorf("plan: INSERT into %s.%s: %w", ins.Table, meta.Cols[ci].Name, err)
			}
			cols[ci].AppendValue(cv)
		}
		for i := range meta.Cols {
			if !provided[i] {
				cols[i].AppendValue(mtypes.NullValue(meta.Cols[i].Typ))
			}
		}
	}
	return &BoundInsert{Table: ins.Table, Values: cols}, nil
}

// BindDelete binds a DELETE statement.
func BindDelete(cat Catalog, del *sqlparse.DeleteStmt, params []mtypes.Value) (*BoundDelete, error) {
	meta, ok := cat.TableMeta(del.Table)
	if !ok {
		return nil, fmt.Errorf("plan: no such table %q", del.Table)
	}
	out := &BoundDelete{Table: del.Table}
	if del.Where != nil {
		b := &binder{cat: cat, params: params}
		s := scopeForTable(meta, del.Table)
		e, err := b.bindExpr(del.Where, s)
		if err != nil {
			return nil, err
		}
		out.Pred = e
	}
	return out, nil
}

// BindUpdate binds an UPDATE statement.
func BindUpdate(cat Catalog, up *sqlparse.UpdateStmt, params []mtypes.Value) (*BoundUpdate, error) {
	meta, ok := cat.TableMeta(up.Table)
	if !ok {
		return nil, fmt.Errorf("plan: no such table %q", up.Table)
	}
	b := &binder{cat: cat, params: params}
	s := scopeForTable(meta, up.Table)
	out := &BoundUpdate{Table: up.Table}
	for _, set := range up.Set {
		ci := meta.ColIndex(set.Col)
		if ci < 0 {
			return nil, fmt.Errorf("plan: no column %q in table %q", set.Col, up.Table)
		}
		e, err := b.bindExpr(set.Expr, s)
		if err != nil {
			return nil, err
		}
		out.SetCols = append(out.SetCols, ci)
		out.SetExprs = append(out.SetExprs, castTo(e, meta.Cols[ci].Typ))
	}
	if up.Where != nil {
		e, err := b.bindExpr(up.Where, s)
		if err != nil {
			return nil, err
		}
		out.Pred = e
	}
	return out, nil
}

// ---------------------------------------------------------------------------
// Scopes.
// ---------------------------------------------------------------------------

type scopeCol struct {
	qual string
	name string
	typ  mtypes.Type
}

type scope struct {
	parent *scope
	cols   []scopeCol
}

func scopeForTable(meta *storage.TableMeta, alias string) *scope {
	s := &scope{}
	for _, c := range meta.Cols {
		s.cols = append(s.cols, scopeCol{qual: alias, name: c.Name, typ: c.Typ})
	}
	return s
}

// resolve finds (slot, depth) for a column reference; depth 0 = this scope,
// 1 = parent (a correlated outer reference), etc.
func (s *scope) resolve(qual, name string) (slot, depth int, typ mtypes.Type, err error) {
	for sc, d := s, 0; sc != nil; sc, d = sc.parent, d+1 {
		found := -1
		for i, c := range sc.cols {
			if c.name != name {
				continue
			}
			if qual != "" && c.qual != qual {
				continue
			}
			if found >= 0 {
				return 0, 0, mtypes.Type{}, fmt.Errorf("plan: ambiguous column %q", name)
			}
			found = i
		}
		if found >= 0 {
			return found, d, sc.cols[found].typ, nil
		}
	}
	if qual != "" {
		return 0, 0, mtypes.Type{}, fmt.Errorf("plan: unknown column %s.%s", qual, name)
	}
	return 0, 0, mtypes.Type{}, fmt.Errorf("plan: unknown column %q", name)
}

func (s *scope) schema() Schema {
	out := make(Schema, len(s.cols))
	for i, c := range s.cols {
		out[i] = ColInfo{Qual: c.qual, Name: c.name, Typ: c.typ}
	}
	return out
}

// outerRef marks a correlated reference to the parent scope during subquery
// binding; decorrelation replaces it before execution.
type outerRef struct {
	Slot int
	Typ  mtypes.Type
	Name string
}

// Type returns the referenced column's type.
func (e *outerRef) Type() mtypes.Type { return e.Typ }

// ---------------------------------------------------------------------------
// SELECT binding.
// ---------------------------------------------------------------------------

type binder struct {
	cat    Catalog
	params []mtypes.Value
	// win collects window calls while one SELECT's items are bound; nil
	// anywhere else, which is what rejects OVER outside the select list.
	win *windowCtx
}

var aggNames = map[string]vec.AggKind{
	"sum": vec.AggSum, "count": vec.AggCount, "min": vec.AggMin,
	"max": vec.AggMax, "avg": vec.AggAvg, "median": vec.AggMedian,
}

func isAggCall(e sqlparse.Expr) (*sqlparse.FuncCall, bool) {
	fc, ok := e.(*sqlparse.FuncCall)
	if !ok {
		return nil, false
	}
	if fc.Over != nil {
		// A windowed sum(...) OVER (...) is a window call, not an aggregate —
		// though its arguments and spec may contain real aggregates, which
		// walkAST still reaches.
		return nil, false
	}
	_, isAgg := aggNames[fc.Name]
	return fc, isAgg
}

func containsAgg(e sqlparse.Expr) bool {
	found := false
	walkAST(e, func(x sqlparse.Expr) bool {
		if _, ok := isAggCall(x); ok {
			found = true
		}
		return !found
	})
	return found
}

// bindSelect binds a full SELECT (outer = enclosing scope for correlated
// subqueries; nil at top level).
func (b *binder) bindSelect(sel *sqlparse.SelectStmt, outer *scope) (Node, error) {
	// Window collection is per SELECT; nested binds get a clean slate.
	savedWin := b.win
	b.win = nil
	defer func() { b.win = savedWin }()

	plan, s, err := b.bindFromWhere(sel, outer)
	if err != nil {
		return nil, err
	}

	hasAgg := len(sel.GroupBy) > 0 || sel.Having != nil
	for _, it := range sel.Items {
		if !it.Star && containsAgg(it.Expr) {
			hasAgg = true
		}
	}

	var projExprs []Expr
	var projNames []string
	if hasAgg {
		plan, projExprs, projNames, err = b.bindAggregate(sel, plan, s)
		if err != nil {
			return nil, err
		}
	} else {
		b.win = &windowCtx{bind: func(ast sqlparse.Expr) (Expr, error) { return b.bindExpr(ast, s) }}
		for _, it := range sel.Items {
			if it.Star {
				for i, c := range s.cols {
					projExprs = append(projExprs, &ColRef{Slot: i, Typ: c.typ, Name: c.name})
					projNames = append(projNames, c.name)
				}
				continue
			}
			e, err := b.bindExpr(it.Expr, s)
			if err != nil {
				return nil, err
			}
			projExprs = append(projExprs, e)
			projNames = append(projNames, itemName(it))
		}
	}

	// Bound after projection resolution, like the hidden-sort-column path:
	// one Window node per distinct spec is stacked over the plan and the
	// placeholders become ColRefs into the appended window columns.
	if b.win != nil && len(b.win.groups) > 0 {
		var offsets []int
		plan, offsets = attachWindows(plan, b.win.groups)
		for i := range projExprs {
			projExprs[i] = resolveWindowRefs(projExprs[i], offsets, b.win.groups)
		}
	}
	// Window functions are not allowed past this point (DISTINCT/ORDER BY).
	b.win = nil

	out := make(Schema, len(projExprs))
	for i := range projExprs {
		out[i] = ColInfo{Name: projNames[i], Typ: projExprs[i].Type()}
	}
	proj := &Project{Input: plan, Exprs: projExprs, Out: out}
	nVisible := len(projExprs)
	var result Node = proj

	if sel.Distinct {
		result = &Distinct{Input: result}
	}

	if len(sel.OrderBy) > 0 {
		keys, err := b.bindOrderBy(sel, proj, projExprs, projNames, s, hasAgg, plan)
		if err != nil {
			return nil, err
		}
		result = &Sort{Input: result, Keys: keys}
		if len(proj.Exprs) > nVisible {
			// Strip hidden sort columns appended by bindOrderBy.
			strip := make([]Expr, nVisible)
			sch := make(Schema, nVisible)
			for i := 0; i < nVisible; i++ {
				strip[i] = &ColRef{Slot: i, Typ: proj.Out[i].Typ, Name: proj.Out[i].Name}
				sch[i] = proj.Out[i]
			}
			result = &Project{Input: result, Exprs: strip, Out: sch}
		}
	}
	if sel.Limit >= 0 || sel.Offset > 0 {
		n := sel.Limit
		if n < 0 {
			// OFFSET without LIMIT: NoLimit keeps the TopN fusion rule off.
			n = NoLimit
		}
		result = &Limit{Input: result, N: n, Offset: sel.Offset}
	}
	return result, nil
}

func itemName(it sqlparse.SelectItem) string {
	if it.Alias != "" {
		return it.Alias
	}
	if id, ok := it.Expr.(*sqlparse.Ident); ok {
		return id.Name
	}
	return "col"
}

// bindFromWhere builds the FROM plan and applies WHERE conjuncts, performing
// subquery decorrelation along the way.
func (b *binder) bindFromWhere(sel *sqlparse.SelectStmt, outer *scope) (Node, *scope, error) {
	if len(sel.From) == 0 {
		// SELECT without FROM: single-row dual.
		return &Project{Input: nil, Exprs: nil, Out: Schema{}}, &scope{parent: outer}, nil
	}
	var plan Node
	s := &scope{parent: outer}
	for _, ref := range sel.From {
		n, cols, err := b.bindTableRef(ref, outer)
		if err != nil {
			return nil, nil, err
		}
		if plan == nil {
			plan = n
		} else {
			plan = &Join{Kind: JoinInner, Left: plan, Right: n}
		}
		s.cols = append(s.cols, cols...)
	}
	if sel.Where == nil {
		return plan, s, nil
	}
	conjuncts := splitConjuncts(sel.Where)
	for _, c := range conjuncts {
		var err error
		plan, err = b.applyConjunct(plan, s, c)
		if err != nil {
			return nil, nil, err
		}
	}
	return plan, s, nil
}

func splitConjuncts(e sqlparse.Expr) []sqlparse.Expr {
	if be, ok := e.(*sqlparse.BinaryExpr); ok && be.Op == "AND" {
		return append(splitConjuncts(be.L), splitConjuncts(be.R)...)
	}
	return []sqlparse.Expr{e}
}

// applyConjunct attaches one WHERE conjunct to the plan, decorrelating
// subqueries into semi/anti joins or grouped joins.
func (b *binder) applyConjunct(plan Node, s *scope, c sqlparse.Expr) (Node, error) {
	switch x := c.(type) {
	case *sqlparse.ExistsExpr:
		return b.bindExists(plan, s, x.Subquery, false)
	case *sqlparse.UnaryExpr:
		if x.Op == "NOT" {
			if ex, ok := x.E.(*sqlparse.ExistsExpr); ok {
				return b.bindExists(plan, s, ex.Subquery, true)
			}
		}
	case *sqlparse.InExpr:
		if x.Subquery != nil {
			return b.bindInSubquery(plan, s, x)
		}
	case *sqlparse.BinaryExpr:
		if isCmpOp(x.Op) {
			if sq, ok := x.R.(*sqlparse.SubqueryExpr); ok {
				return b.bindScalarSubqueryCmp(plan, s, x.L, x.Op, sq.Select)
			}
			if sq, ok := x.L.(*sqlparse.SubqueryExpr); ok {
				return b.bindScalarSubqueryCmp(plan, s, x.R, flipOp(x.Op), sq.Select)
			}
		}
	}
	e, err := b.bindExpr(c, s)
	if err != nil {
		return nil, err
	}
	return &Filter{Input: plan, Pred: e}, nil
}

func isCmpOp(op string) bool {
	switch op {
	case "=", "<>", "<", "<=", ">", ">=":
		return true
	}
	return false
}

func flipOp(op string) string {
	switch op {
	case "<":
		return ">"
	case "<=":
		return ">="
	case ">":
		return "<"
	case ">=":
		return "<="
	}
	return op
}

func (b *binder) bindTableRef(ref sqlparse.TableRef, outer *scope) (Node, []scopeCol, error) {
	switch x := ref.(type) {
	case *sqlparse.BaseTable:
		meta, ok := b.cat.TableMeta(x.Name)
		if !ok {
			return nil, nil, fmt.Errorf("plan: no such table %q", x.Name)
		}
		alias := x.Alias
		if alias == "" {
			alias = x.Name
		}
		cols := make([]int, len(meta.Cols))
		out := make(Schema, len(meta.Cols))
		scols := make([]scopeCol, len(meta.Cols))
		for i, c := range meta.Cols {
			cols[i] = i
			out[i] = ColInfo{Qual: alias, Name: c.Name, Typ: c.Typ}
			scols[i] = scopeCol{qual: alias, name: c.Name, typ: c.Typ}
		}
		return &Scan{Table: x.Name, Cols: cols, Out: out}, scols, nil
	case *sqlparse.SubqueryRef:
		// Derived tables bind with no outer scope (no lateral correlation).
		n, err := b.bindSelect(x.Select, nil)
		if err != nil {
			return nil, nil, err
		}
		sch := n.Schema()
		scols := make([]scopeCol, len(sch))
		for i, c := range sch {
			scols[i] = scopeCol{qual: x.Alias, name: c.Name, typ: c.Typ}
		}
		return n, scols, nil
	case *sqlparse.JoinRef:
		ln, lcols, err := b.bindTableRef(x.Left, outer)
		if err != nil {
			return nil, nil, err
		}
		rn, rcols, err := b.bindTableRef(x.Right, outer)
		if err != nil {
			return nil, nil, err
		}
		joined := &scope{parent: outer, cols: append(append([]scopeCol{}, lcols...), rcols...)}
		kind := JoinInner
		if x.Type == sqlparse.JoinLeft {
			kind = JoinLeft
		}
		j := &Join{Kind: kind, Left: ln, Right: rn}
		if x.On != nil {
			on, err := b.bindExpr(x.On, joined)
			if err != nil {
				return nil, nil, err
			}
			// Split equi conditions referencing exactly one side each.
			nLeft := len(lcols)
			for _, conj := range splitBoundConjuncts(on) {
				if l, r, ok := equiSides(conj, nLeft, len(joined.cols)); ok {
					j.EquiL = append(j.EquiL, l)
					j.EquiR = append(j.EquiR, r)
				} else {
					j.Residual = andExpr(j.Residual, conj)
				}
			}
		}
		return j, joined.cols, nil
	}
	return nil, nil, fmt.Errorf("plan: unsupported table reference %T", ref)
}

// splitBoundConjuncts splits a bound predicate on AND.
func splitBoundConjuncts(e Expr) []Expr {
	if bo, ok := e.(*BinOp); ok && bo.Kind == BinAnd {
		return append(splitBoundConjuncts(bo.L), splitBoundConjuncts(bo.R)...)
	}
	return []Expr{e}
}

// SplitConjuncts splits a bound predicate on top-level ANDs. The executor
// filters by refining one candidate list conjunct by conjunct, so it needs
// the same decomposition the optimizer uses for pushdown.
func SplitConjuncts(e Expr) []Expr { return splitBoundConjuncts(e) }

// equiSides recognizes `leftExpr = rightExpr` where leftExpr only touches
// slots < nLeft and rightExpr only slots >= nLeft (or vice versa); returns
// the pair rebased for Join.EquiL/EquiR.
func equiSides(e Expr, nLeft, total int) (Expr, Expr, bool) {
	bo, ok := e.(*BinOp)
	if !ok || bo.Kind != BinCmp || bo.Cmp != vec.CmpEq {
		return nil, nil, false
	}
	side := func(x Expr) (onlyLeft, onlyRight bool) {
		used := map[int]bool{}
		SlotsUsed(x, used)
		if len(used) == 0 {
			return false, false
		}
		onlyLeft, onlyRight = true, true
		for s := range used {
			if s >= nLeft {
				onlyLeft = false
			} else {
				onlyRight = false
			}
		}
		return onlyLeft, onlyRight
	}
	lL, lR := side(bo.L)
	rL, rR := side(bo.R)
	rebase := func(x Expr) Expr { return MapSlots(x, func(s int) int { return s - nLeft }) }
	switch {
	case lL && rR:
		return bo.L, rebase(bo.R), true
	case lR && rL:
		return bo.R, rebase(bo.L), true
	}
	return nil, nil, false
}

func andExpr(a, b Expr) Expr {
	if a == nil {
		return b
	}
	if b == nil {
		return a
	}
	return &BinOp{Kind: BinAnd, L: a, R: b, Typ: mtypes.Bool}
}

// ---------------------------------------------------------------------------
// Aggregation binding.
// ---------------------------------------------------------------------------

func (b *binder) bindAggregate(sel *sqlparse.SelectStmt, plan Node, s *scope) (Node, []Expr, []string, error) {
	// 1. Bind GROUP BY expressions (ordinals, aliases, plain expressions).
	var groupASTs []sqlparse.Expr
	var groupExprs []Expr
	var groupNames []string
	aliasToAST := map[string]sqlparse.Expr{}
	for _, it := range sel.Items {
		if it.Alias != "" && !it.Star {
			aliasToAST[it.Alias] = it.Expr
		}
	}
	for _, g := range sel.GroupBy {
		ast := g
		name := ""
		if num, ok := g.(*sqlparse.NumberLit); ok && !strings.Contains(num.Text, ".") {
			ord, err := strconv.Atoi(num.Text)
			if err != nil || ord < 1 || ord > len(sel.Items) || sel.Items[ord-1].Star {
				return nil, nil, nil, fmt.Errorf("plan: invalid GROUP BY ordinal %s", num.Text)
			}
			ast = sel.Items[ord-1].Expr
			name = itemName(sel.Items[ord-1])
		} else if id, ok := g.(*sqlparse.Ident); ok && id.Qualifier == "" {
			if a, found := aliasToAST[id.Name]; found {
				// Alias wins only when the name is not a real input column.
				if _, _, _, err := s.resolve("", id.Name); err != nil {
					ast = a
				}
			}
			name = id.Name
		}
		e, err := b.bindExpr(ast, s)
		if err != nil {
			return nil, nil, nil, err
		}
		if name == "" {
			name = ExprString(e)
		}
		groupASTs = append(groupASTs, ast)
		groupExprs = append(groupExprs, e)
		groupNames = append(groupNames, name)
	}

	agg := &Aggregate{Input: plan, GroupBy: groupExprs, Names: groupNames}

	// 2. Post-aggregation rebinding of select items. Window calls bind their
	// arguments and spec in the same post-agg context (a window may order by
	// an aggregate result), so they land above the Aggregate.
	pa := &postAggBinder{b: b, s: s, agg: agg, groupASTs: groupASTs, aliasToAST: aliasToAST}
	b.win = &windowCtx{bind: pa.rebind}
	var projExprs []Expr
	var projNames []string
	for _, it := range sel.Items {
		if it.Star {
			return nil, nil, nil, fmt.Errorf("plan: SELECT * cannot be combined with aggregation")
		}
		e, err := pa.rebind(it.Expr)
		if err != nil {
			return nil, nil, nil, err
		}
		projExprs = append(projExprs, e)
		projNames = append(projNames, itemName(it))
	}

	var result Node = agg
	if sel.Having != nil {
		// HAVING runs below the Window nodes: no window functions here.
		win := b.win
		b.win = nil
		h, err := pa.rebind(sel.Having)
		b.win = win
		if err != nil {
			return nil, nil, nil, err
		}
		result = &Filter{Input: agg, Pred: h}
	}
	// Projection slots reference the aggregate output schema, which the
	// HAVING filter preserves.
	return result, projExprs, projNames, nil
}

// postAggBinder rebinds expressions over the aggregate output schema:
// group expressions become ColRefs to group slots, aggregate calls become
// AggRefs.
type postAggBinder struct {
	b          *binder
	s          *scope
	agg        *Aggregate
	groupASTs  []sqlparse.Expr
	aliasToAST map[string]sqlparse.Expr
}

func (pa *postAggBinder) rebind(ast sqlparse.Expr) (Expr, error) {
	// Window calls first: they look like aggregate calls but bind above the
	// Aggregate, with their arguments rebound in this post-agg context.
	if fc, ok := ast.(*sqlparse.FuncCall); ok && fc.Over != nil {
		return pa.b.bindWindowCall(fc)
	}
	// Whole-subtree match against a GROUP BY expression?
	if !containsAgg(ast) {
		if slot, ok := pa.matchGroup(ast); ok {
			g := pa.agg.GroupBy[slot]
			return &ColRef{Slot: slot, Typ: g.Type(), Name: pa.agg.Names[slot]}, nil
		}
	}
	switch x := ast.(type) {
	case *sqlparse.FuncCall:
		if kind, ok := aggNames[x.Name]; ok {
			return pa.addAgg(kind, x)
		}
		// Scalar function over rebindable args.
		return pa.rebindScalar(ast)
	case *sqlparse.Ident:
		// Unmatched plain column: must be functionally dependent on a group
		// key; we require exact membership.
		return nil, fmt.Errorf("plan: column %q must appear in GROUP BY or an aggregate", x.Name)
	default:
		return pa.rebindScalar(ast)
	}
}

// rebindScalar rebuilds a scalar AST node with post-agg-rebound children by
// temporarily binding through a child-rewriting pass.
func (pa *postAggBinder) rebindScalar(ast sqlparse.Expr) (Expr, error) {
	switch x := ast.(type) {
	case *sqlparse.NumberLit, *sqlparse.StringLit, *sqlparse.DateLit, *sqlparse.NullLit, *sqlparse.BoolLit, *sqlparse.IntervalLit, *sqlparse.ParamRef:
		return pa.b.bindExpr(ast, pa.s)
	case *sqlparse.BinaryExpr:
		l, err := pa.rebind(x.L)
		if err != nil {
			return nil, err
		}
		r, err := pa.rebind(x.R)
		if err != nil {
			return nil, err
		}
		return makeBinOp(x.Op, l, r)
	case *sqlparse.UnaryExpr:
		e, err := pa.rebind(x.E)
		if err != nil {
			return nil, err
		}
		if x.Op == "NOT" {
			return &NotExpr{E: e}, nil
		}
		return &FuncExpr{Kind: FuncNeg, Args: []Expr{e}, Typ: e.Type()}, nil
	case *sqlparse.CaseExpr:
		return pa.rebindCase(x)
	case *sqlparse.CastExpr:
		e, err := pa.rebind(x.E)
		if err != nil {
			return nil, err
		}
		to, err := typeFromAST(x.TypeName, x.Prec, x.Scale, x.Width)
		if err != nil {
			return nil, err
		}
		return &CastExpr{E: e, To: to}, nil
	case *sqlparse.ExtractExpr:
		e, err := pa.rebind(x.E)
		if err != nil {
			return nil, err
		}
		return extractExpr(x.Field, e), nil
	case *sqlparse.IsNullExpr:
		e, err := pa.rebind(x.E)
		if err != nil {
			return nil, err
		}
		return &IsNullExpr{E: e, Not: x.Not}, nil
	case *sqlparse.BetweenExpr:
		e, err := pa.rebind(x.E)
		if err != nil {
			return nil, err
		}
		lo, err := pa.rebind(x.Lo)
		if err != nil {
			return nil, err
		}
		hi, err := pa.rebind(x.Hi)
		if err != nil {
			return nil, err
		}
		return &BetweenExpr{E: e, Lo: lo, Hi: hi, Not: x.Not}, nil
	case *sqlparse.LikeExpr:
		e, err := pa.rebind(x.E)
		if err != nil {
			return nil, err
		}
		pat, err := pa.b.bindExpr(x.Pattern, pa.s)
		if err != nil {
			return nil, err
		}
		pc, ok := pat.(*Const)
		if !ok || pc.Val.Typ.Kind != mtypes.KVarchar {
			return nil, fmt.Errorf("plan: LIKE pattern must be a string constant")
		}
		return &LikeExpr{E: e, Pattern: pc.Val.S, Not: x.Not}, nil
	case *sqlparse.InExpr:
		if x.Subquery != nil {
			return nil, fmt.Errorf("plan: IN (subquery) not supported in aggregate context")
		}
		e, err := pa.rebind(x.E)
		if err != nil {
			return nil, err
		}
		var vals []mtypes.Value
		for _, item := range x.List {
			ie, err := pa.b.bindExpr(item, pa.s)
			if err != nil {
				return nil, err
			}
			c, ok := FoldConst(ie).(*Const)
			if !ok {
				return nil, fmt.Errorf("plan: IN list elements must be constants")
			}
			vals = append(vals, c.Val)
		}
		return &InListExpr{E: e, Vals: vals, Not: x.Not}, nil
	case *sqlparse.SubqueryExpr:
		// HAVING ... > (SELECT ...): an uncorrelated scalar subquery binds to
		// a subplan constant evaluated once per query (Q11's threshold).
		return pa.b.bindExpr(ast, pa.s)
	case *sqlparse.FuncCall:
		return nil, fmt.Errorf("plan: unsupported function %q in aggregate context", x.Name)
	}
	return nil, fmt.Errorf("plan: unsupported expression %T in aggregate context", ast)
}

func (pa *postAggBinder) rebindCase(x *sqlparse.CaseExpr) (Expr, error) {
	ce := &CaseExpr{}
	var operand Expr
	var err error
	if x.Operand != nil {
		operand, err = pa.rebind(x.Operand)
		if err != nil {
			return nil, err
		}
	}
	for _, w := range x.Whens {
		var cond Expr
		if operand != nil {
			r, err := pa.rebind(w.Cond)
			if err != nil {
				return nil, err
			}
			cond, err = makeBinOp("=", operand, r)
			if err != nil {
				return nil, err
			}
		} else {
			cond, err = pa.rebind(w.Cond)
			if err != nil {
				return nil, err
			}
		}
		res, err := pa.rebind(w.Result)
		if err != nil {
			return nil, err
		}
		ce.Whens = append(ce.Whens, WhenClause{Cond: cond, Result: res})
	}
	if x.Else != nil {
		ce.Else, err = pa.rebind(x.Else)
		if err != nil {
			return nil, err
		}
	}
	ce.Typ = caseResultType(ce)
	return ce, nil
}

func (pa *postAggBinder) matchGroup(ast sqlparse.Expr) (int, bool) {
	// Resolve aliases first.
	if id, ok := ast.(*sqlparse.Ident); ok && id.Qualifier == "" {
		if a, found := pa.aliasToAST[id.Name]; found {
			if _, _, _, err := pa.s.resolve("", id.Name); err != nil {
				ast = a
			}
		}
	}
	bound, err := pa.b.bindExpr(ast, pa.s)
	if err != nil {
		return 0, false
	}
	for i, g := range pa.agg.GroupBy {
		if reflect.DeepEqual(bound, g) {
			return i, true
		}
	}
	return 0, false
}

func (pa *postAggBinder) addAgg(kind vec.AggKind, x *sqlparse.FuncCall) (Expr, error) {
	call := AggCall{Kind: kind, Distinct: x.Distinct, Name: x.Name}
	if x.Star {
		if kind != vec.AggCount {
			return nil, fmt.Errorf("plan: %s(*) is not valid", x.Name)
		}
		call.Kind = vec.AggCountStar
	} else {
		if len(x.Args) != 1 {
			return nil, fmt.Errorf("plan: %s takes exactly one argument", x.Name)
		}
		// Aggregate arguments evaluate below the Window nodes: a window call
		// inside one must error, not leak an unresolved placeholder.
		win := pa.b.win
		pa.b.win = nil
		arg, err := pa.b.bindExpr(x.Args[0], pa.s)
		pa.b.win = win
		if err != nil {
			return nil, err
		}
		call.Arg = arg
	}
	// Reuse identical aggregate calls (shared computation).
	for i, a := range pa.agg.Aggs {
		if a.Kind == call.Kind && a.Distinct == call.Distinct && reflect.DeepEqual(a.Arg, call.Arg) {
			slot := len(pa.agg.GroupBy) + i
			return &AggRef{Slot: slot, Typ: aggType(a)}, nil
		}
	}
	pa.agg.Aggs = append(pa.agg.Aggs, call)
	slot := len(pa.agg.GroupBy) + len(pa.agg.Aggs) - 1
	return &AggRef{Slot: slot, Typ: aggType(call)}, nil
}

func aggType(a AggCall) mtypes.Type {
	t := mtypes.BigInt
	if a.Arg != nil {
		t = a.Arg.Type()
	}
	return vec.AggResultType(a.Kind, t)
}

// ---------------------------------------------------------------------------
// ORDER BY binding.
// ---------------------------------------------------------------------------

func (b *binder) bindOrderBy(sel *sqlparse.SelectStmt, proj *Project, projExprs []Expr, projNames []string, s *scope, hasAgg bool, aggInput Node) ([]SortSpec, error) {
	var keys []SortSpec
	for _, oi := range sel.OrderBy {
		slot := -1
		// (a) ordinal
		if num, ok := oi.Expr.(*sqlparse.NumberLit); ok && !strings.Contains(num.Text, ".") {
			ord, err := strconv.Atoi(num.Text)
			if err != nil || ord < 1 || ord > len(projExprs) {
				return nil, fmt.Errorf("plan: invalid ORDER BY ordinal %s", num.Text)
			}
			slot = ord - 1
		}
		// (b) alias / output name
		if slot < 0 {
			if id, ok := oi.Expr.(*sqlparse.Ident); ok && id.Qualifier == "" {
				for i, n := range projNames {
					if n == id.Name {
						slot = i
						break
					}
				}
			}
		}
		// (c) structural match with a projected expression
		if slot < 0 && !hasAgg {
			if bound, err := b.bindExpr(oi.Expr, s); err == nil {
				for i, pe := range projExprs {
					if reflect.DeepEqual(bound, pe) {
						slot = i
						break
					}
				}
				if slot < 0 {
					// (d) hidden sort column appended to the projection
					proj.Exprs = append(proj.Exprs, bound)
					proj.Out = append(proj.Out, ColInfo{Name: "$sort", Typ: bound.Type()})
					slot = len(proj.Exprs) - 1
				}
			}
		}
		if slot < 0 {
			return nil, fmt.Errorf("plan: cannot resolve ORDER BY expression")
		}
		keys = append(keys, SortSpec{
			E:    &ColRef{Slot: slot, Typ: proj.Out[slot].Typ, Name: proj.Out[slot].Name},
			Desc: oi.Desc,
		})
	}
	return keys, nil
}
