package monetlite

import (
	"fmt"
	"sync"

	"monetlite/internal/exec"
	"monetlite/internal/mtypes"
	"monetlite/internal/vec"
)

// Result is a columnar query result, the Go analogue of the paper's
// monetdb_result. Columns are fetched individually; numeric columns support
// zero-copy access (the returned slice aliases engine memory) and converted
// forms are materialized lazily on first access (§3.3 of the paper:
// "Zero-Copy" and "Lazy Conversion", with mprotect tricks replaced by Go-safe
// equivalents — see DESIGN.md).
type Result struct {
	names []string
	cols  []*Column
}

func (c *Conn) newResult(er *exec.Result) *Result {
	res := &Result{names: er.Names}
	for i, v := range er.Cols {
		if c.db.cfg.ForceCopy {
			v = v.Clone()
		}
		col := &Column{name: er.Names[i], vec: v}
		if c.db.cfg.EagerConvert {
			col.materializeAll()
		}
		res.cols = append(res.cols, col)
	}
	return res
}

// NumRows returns the number of result rows.
func (r *Result) NumRows() int {
	if len(r.cols) == 0 {
		return 0
	}
	return r.cols[0].vec.Len()
}

// NumCols returns the number of result columns.
func (r *Result) NumCols() int { return len(r.cols) }

// Names returns the column names.
func (r *Result) Names() []string { return r.names }

// Column fetches column i (monetdb_result_fetch).
func (r *Result) Column(i int) *Column { return r.cols[i] }

// ColumnByName fetches a column by its result name.
func (r *Result) ColumnByName(name string) (*Column, bool) {
	for i, n := range r.names {
		if n == name {
			return r.cols[i], true
		}
	}
	return nil, false
}

// RowStrings renders row i as display strings (for shells and tests).
func (r *Result) RowStrings(i int) []string {
	out := make([]string, len(r.cols))
	for k, c := range r.cols {
		out[k] = c.vec.Value(i).String()
	}
	return out
}

// Column is one result column. The low-level accessors (Ints32, Ints64,
// Floats64, ...) are zero-copy when the physical representation matches:
// they return slices that alias the engine's memory. Callers MUST treat
// those slices as read-only — for persistent columns they may be read-only
// OS memory mappings, where a write faults (the same protection mprotect
// gave MonetDBLite). Use Materialize for a private writable copy.
//
// The high-level converting accessors (AsFloats, AsStrings, AsInts) accept
// any column type; conversion happens lazily on first call and is cached.
type Column struct {
	name string
	vec  *vec.Vector

	onceF sync.Once
	fConv []float64
	onceS sync.Once
	sConv []string
	onceI sync.Once
	iConv []int64
}

// Name returns the column name.
func (c *Column) Name() string { return c.name }

// Type returns the SQL type of the column.
func (c *Column) Type() string { return c.vec.Typ.String() }

// Len returns the number of values.
func (c *Column) Len() int { return c.vec.Len() }

// IsNull reports whether row i is NULL.
func (c *Column) IsNull(i int) bool { return c.vec.IsNull(i) }

// Value boxes row i as a Go value (nil for NULL, int64/float64/string/bool).
func (c *Column) Value(i int) any {
	v := c.vec.Value(i)
	if v.Null {
		return nil
	}
	switch v.Typ.Kind {
	case mtypes.KBool:
		return v.I != 0
	case mtypes.KDouble:
		return v.F
	case mtypes.KDecimal:
		return v.AsFloat()
	case mtypes.KVarchar:
		return v.S
	case mtypes.KDate:
		return mtypes.FormatDate(int32(v.I))
	default:
		return v.I
	}
}

// errType builds the type-mismatch error for low-level accessors.
func (c *Column) errType(want string) error {
	return fmt.Errorf("monetlite: column %q is %s, not %s (use the As* converters)", c.name, c.vec.Typ, want)
}

// Ints8 returns the raw int8 payload (BOOLEAN/TINYINT). Zero-copy.
func (c *Column) Ints8() ([]int8, error) {
	if c.vec.I8 == nil {
		return nil, c.errType("TINYINT")
	}
	return c.vec.I8, nil
}

// Ints16 returns the raw int16 payload (SMALLINT). Zero-copy.
func (c *Column) Ints16() ([]int16, error) {
	if c.vec.I16 == nil {
		return nil, c.errType("SMALLINT")
	}
	return c.vec.I16, nil
}

// Ints32 returns the raw int32 payload (INTEGER/DATE). Zero-copy. NULL is
// mtypes sentinel math.MinInt32.
func (c *Column) Ints32() ([]int32, error) {
	if c.vec.I32 == nil {
		return nil, c.errType("INTEGER")
	}
	return c.vec.I32, nil
}

// Ints64 returns the raw int64 payload (BIGINT/DECIMAL — decimals are scaled
// integers). Zero-copy.
func (c *Column) Ints64() ([]int64, error) {
	if c.vec.I64 == nil {
		return nil, c.errType("BIGINT")
	}
	return c.vec.I64, nil
}

// Floats64 returns the raw float64 payload (DOUBLE). Zero-copy.
func (c *Column) Floats64() ([]float64, error) {
	if c.vec.F64 == nil {
		return nil, c.errType("DOUBLE")
	}
	return c.vec.F64, nil
}

// Strings returns the string payload. The strings alias the engine's string
// heap (no per-value copy).
func (c *Column) Strings() ([]string, error) {
	if c.vec.Str == nil {
		return nil, c.errType("VARCHAR")
	}
	return c.vec.Str, nil
}

// AsFloats converts any numeric column to float64 (NULL -> NaN). The
// conversion is lazy: it runs on the first call and is cached — the Go
// analogue of the paper's SIGSEGV-driven lazy result conversion.
func (c *Column) AsFloats() []float64 {
	c.onceF.Do(func() {
		switch {
		case c.vec.Typ.Kind == mtypes.KDouble:
			c.fConv = c.vec.F64
		case c.vec.Typ.IsNumeric() || c.vec.Typ.Kind == mtypes.KDate || c.vec.Typ.Kind == mtypes.KBool:
			c.fConv = vec.AsFloats(c.vec)
		default:
			// Non-numeric columns convert to NULLs rather than panicking.
			out := make([]float64, c.vec.Len())
			for i := range out {
				out[i] = mtypes.NullFloat64()
			}
			c.fConv = out
		}
	})
	return c.fConv
}

// AsInts converts any integer-backed column to int64 (NULL -> MinInt64),
// lazily and cached.
func (c *Column) AsInts() []int64 {
	c.onceI.Do(func() {
		c.iConv = vec.AsInts64(c.vec)
	})
	return c.iConv
}

// AsStrings renders any column as display strings (NULL -> "NULL"), lazily
// and cached.
func (c *Column) AsStrings() []string {
	c.onceS.Do(func() {
		out := make([]string, c.vec.Len())
		for i := range out {
			out[i] = c.vec.Value(i).String()
		}
		c.sConv = out
	})
	return c.sConv
}

// Materialize returns a private, writable deep copy of the column's payload
// (copy-on-write moved to the API boundary; see DESIGN.md substitution #1).
func (c *Column) Materialize() *Column {
	return &Column{name: c.name, vec: c.vec.Clone()}
}

// DecimalScale returns the scale for DECIMAL columns (0 otherwise), needed
// to interpret Ints64 payloads.
func (c *Column) DecimalScale() int { return c.vec.Typ.Scale }

func (c *Column) materializeAll() {
	switch c.vec.Typ.Kind {
	case mtypes.KVarchar:
		c.AsStrings()
	case mtypes.KDouble, mtypes.KDecimal:
		c.AsFloats()
	default:
		c.AsInts()
	}
}

// InternalVector exposes a result column's engine vector to in-process
// infrastructure (the network server, the database/sql driver). It is not
// part of the stable public API; treat the vector as read-only.
func InternalVector(c *Column) *vec.Vector { return c.vec }

// InternalValue boxes row i of a column as an engine value (infrastructure
// hook, not stable public API).
func InternalValue(c *Column, row int) mtypes.Value { return c.vec.Value(row) }
