package monetlite

import (
	"fmt"

	"monetlite/internal/mtypes"
	"monetlite/internal/txn"
	"monetlite/internal/vec"
)

// Append bulk-appends columnar data to a table — the paper's monetdb_append.
// It bypasses SQL parsing entirely, which is what makes embedded ingestion
// orders of magnitude faster than INSERT statements (Figure 5).
//
// cols must supply one slice per table column, in schema order. Accepted
// element types per SQL type:
//
//	BOOLEAN            []bool or []int8 (0/1, NullInt8 sentinel)
//	TINYINT            []int8
//	SMALLINT           []int16
//	INTEGER            []int32
//	BIGINT             []int64
//	DOUBLE             []float64 (NaN = NULL)
//	DECIMAL(p,s)       []int64 (already scaled) or []float64 (converted)
//	DATE               []int32 (epoch days) or []string ("YYYY-MM-DD")
//	VARCHAR            []string
//
// Slices are copied into the engine; the caller keeps ownership.
func (c *Conn) Append(table string, cols ...any) error {
	if c.db.isClosed() {
		return ErrClosed
	}
	tx := c.tx
	auto := tx == nil
	if auto {
		tx = c.db.mgr.Begin()
	}
	err := c.appendInTxn(tx, table, cols)
	if err != nil {
		if auto {
			tx.Rollback()
		}
		return err
	}
	if auto {
		return tx.Commit()
	}
	return nil
}

func (c *Conn) appendInTxn(tx *txn.Txn, table string, cols []any) error {
	view, ok := tx.View(table)
	if !ok {
		return fmt.Errorf("monetlite: no such table %q", table)
	}
	meta := view.Meta()
	if len(cols) != len(meta.Cols) {
		return fmt.Errorf("monetlite: append to %s: %d columns, want %d", table, len(cols), len(meta.Cols))
	}
	vecs := make([]*vec.Vector, len(cols))
	n := -1
	for i, raw := range cols {
		v, err := toVector(meta.Cols[i].Typ, raw)
		if err != nil {
			return fmt.Errorf("monetlite: append to %s.%s: %w", table, meta.Cols[i].Name, err)
		}
		if n < 0 {
			n = v.Len()
		} else if v.Len() != n {
			return fmt.Errorf("monetlite: append to %s: ragged input (%d vs %d rows)", table, v.Len(), n)
		}
		vecs[i] = v
	}
	return tx.Append(table, vecs)
}

// toVector converts a user slice into an engine vector of the column type.
func toVector(t mtypes.Type, raw any) (*vec.Vector, error) {
	switch data := raw.(type) {
	case []bool:
		if t.Kind != mtypes.KBool {
			return nil, fmt.Errorf("[]bool into %s", t)
		}
		v := vec.New(t, len(data))
		for i, b := range data {
			if b {
				v.I8[i] = 1
			}
		}
		return v, nil
	case []int8:
		if t.Kind != mtypes.KBool && t.Kind != mtypes.KTinyInt {
			return nil, fmt.Errorf("[]int8 into %s", t)
		}
		v := vec.New(t, len(data))
		copy(v.I8, data)
		return v, nil
	case []int16:
		if t.Kind != mtypes.KSmallInt {
			return nil, fmt.Errorf("[]int16 into %s", t)
		}
		v := vec.New(t, len(data))
		copy(v.I16, data)
		return v, nil
	case []int32:
		if t.Kind != mtypes.KInt && t.Kind != mtypes.KDate {
			return nil, fmt.Errorf("[]int32 into %s", t)
		}
		v := vec.New(t, len(data))
		copy(v.I32, data)
		return v, nil
	case []int64:
		if t.Kind != mtypes.KBigInt && t.Kind != mtypes.KDecimal {
			return nil, fmt.Errorf("[]int64 into %s", t)
		}
		v := vec.New(t, len(data))
		copy(v.I64, data)
		return v, nil
	case []float64:
		switch t.Kind {
		case mtypes.KDouble:
			v := vec.New(t, len(data))
			copy(v.F64, data)
			return v, nil
		case mtypes.KDecimal:
			v := vec.New(t, len(data))
			mult := float64(mtypes.Pow10[t.Scale])
			for i, f := range data {
				switch {
				case mtypes.IsNullF64(f):
					v.I64[i] = mtypes.NullInt64
				case f < 0:
					v.I64[i] = int64(f*mult - 0.5)
				default:
					v.I64[i] = int64(f*mult + 0.5)
				}
			}
			return v, nil
		}
		return nil, fmt.Errorf("[]float64 into %s", t)
	case []string:
		switch t.Kind {
		case mtypes.KVarchar:
			v := vec.New(t, len(data))
			copy(v.Str, data)
			return v, nil
		case mtypes.KDate:
			v := vec.New(t, len(data))
			for i, s := range data {
				if s == "" {
					v.I32[i] = mtypes.NullInt32
					continue
				}
				d, err := mtypes.ParseDate(s)
				if err != nil {
					return nil, err
				}
				v.I32[i] = d
			}
			return v, nil
		}
		return nil, fmt.Errorf("[]string into %s", t)
	default:
		return nil, fmt.Errorf("unsupported slice type %T", raw)
	}
}
