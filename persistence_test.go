package monetlite

import (
	"path/filepath"
	"testing"
	"time"
)

// The full persistent lifecycle: load, checkpoint, reopen (columns now
// lazily memory-mapped), query through the mmap path, mutate, recover.
func TestPersistentLifecycleWithMmap(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "db")
	db, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	c := db.Connect()
	mustExec(t, c, `CREATE TABLE facts (k INTEGER, v DECIMAL(10,2), s VARCHAR, d DATE)`)
	n := 5000
	ks := make([]int32, n)
	vs := make([]float64, n)
	ss := make([]string, n)
	ds := make([]int32, n)
	for i := 0; i < n; i++ {
		ks[i] = int32(i)
		vs[i] = float64(i) / 4
		ss[i] = []string{"alpha", "beta", "gamma"}[i%3]
		ds[i] = int32(9000 + i%365)
	}
	if err := c.Append("facts", ks, vs, ss, ds); err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil { // checkpoints
		t.Fatal(err)
	}

	// Reopen: columns are file-backed and mmap'd on first touch.
	db2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	c2 := db2.Connect()
	res := mustQuery(t, c2, `SELECT s, count(*), sum(v) FROM facts WHERE k >= 1000 GROUP BY s ORDER BY s`)
	if res.NumRows() != 3 {
		t.Fatalf("groups: %v", resultGrid(res))
	}
	total := int64(0)
	counts := res.Column(1).AsInts()
	for _, x := range counts {
		total += x
	}
	if total != 4000 {
		t.Fatalf("filtered count: %d", total)
	}
	// Zero-copy access over a mapped column.
	res = mustQuery(t, c2, `SELECT k FROM facts`)
	raw, err := res.Column(0).Ints32()
	if err != nil {
		t.Fatal(err)
	}
	if len(raw) != n || raw[4999] != 4999 {
		t.Fatalf("mapped zero-copy: %d %d", len(raw), raw[len(raw)-1])
	}

	// Mutate after reload: append (copies the mapped column into process
	// memory), delete, update; then crash-recover from the WAL.
	if err := c2.Append("facts", []int32{9001}, []float64{1}, []string{"delta"}, []int32{1}); err != nil {
		t.Fatal(err)
	}
	mustExec(t, c2, `DELETE FROM facts WHERE k < 10`)
	mustExec(t, c2, `UPDATE facts SET v = v + 100 WHERE k = 9001`)
	// Simulated crash (no checkpoint).
	db2.mu.Lock()
	db2.closed = true
	db2.log.Close()
	db2.store.Close()
	db2.mu.Unlock()

	db3, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer db3.Close()
	c3 := db3.Connect()
	res = mustQuery(t, c3, `SELECT count(*) FROM facts`)
	if res.RowStrings(0)[0] != "4991" { // 5000 - 10 deleted + 1 appended
		t.Fatalf("recovered count: %v", resultGrid(res))
	}
	res = mustQuery(t, c3, `SELECT v FROM facts WHERE k = 9001`)
	if res.NumRows() != 1 || res.RowStrings(0)[0] != "101.00" {
		t.Fatalf("recovered update: %v", resultGrid(res))
	}
}

func TestQueryTimeoutConfig(t *testing.T) {
	db, err := OpenInMemory(Config{Parallel: false, QueryTimeout: time.Nanosecond})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	c := db.Connect()
	mustExec(t, c, `CREATE TABLE t (a INTEGER)`)
	big := make([]int32, 200000)
	for i := range big {
		big[i] = int32(i)
	}
	if err := c.Append("t", big); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Query(`SELECT a, count(*) FROM t GROUP BY a`); err == nil {
		t.Fatal("expected query timeout")
	}
}

func TestConfigOptions(t *testing.T) {
	// ForceCopy: results never alias engine memory.
	db, _ := OpenInMemory(Config{ForceCopy: true})
	defer db.Close()
	c := db.Connect()
	mustExec(t, c, `CREATE TABLE t (a INTEGER)`)
	c.Append("t", []int32{1, 2, 3})
	r1 := mustQuery(t, c, `SELECT a FROM t`)
	r2 := mustQuery(t, c, `SELECT a FROM t`)
	s1, _ := r1.Column(0).Ints32()
	s2, _ := r2.Column(0).Ints32()
	s1[0] = 99
	if s2[0] == 99 {
		t.Fatal("ForceCopy results should be independent")
	}
	// NoIndexes engine still answers point queries correctly.
	db2, _ := OpenInMemory(Config{NoIndexes: true})
	defer db2.Close()
	c2 := db2.Connect()
	mustExec(t, c2, `CREATE TABLE t (a INTEGER)`)
	c2.Append("t", []int32{5, 6, 7})
	res := mustQuery(t, c2, `SELECT count(*) FROM t WHERE a = 6`)
	if res.RowStrings(0)[0] != "1" {
		t.Fatal("NoIndexes correctness")
	}
}

func TestTablesListing(t *testing.T) {
	db := memDB(t)
	c := db.Connect()
	mustExec(t, c, `CREATE TABLE b (x INTEGER); CREATE TABLE a (y INTEGER)`)
	names := db.Tables()
	if len(names) != 2 || names[0] != "a" || names[1] != "b" {
		t.Fatalf("tables: %v", names)
	}
}
