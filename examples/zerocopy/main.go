// Zero-copy and lazy conversion: the §3.3 result-transfer machinery made
// visible. Numeric result columns alias engine memory (O(1) fetch regardless
// of size); converted forms materialize lazily on first access; Materialize
// gives a private writable copy (copy-on-write at the API boundary).
package main

import (
	"fmt"
	"log"
	"time"

	"monetlite"
)

func main() {
	db, err := monetlite.OpenInMemory()
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()
	conn := db.Connect()

	if _, err := conn.Exec(`CREATE TABLE big (i INTEGER, price DECIMAL(15,2))`); err != nil {
		log.Fatal(err)
	}
	const n = 2_000_000
	ints := make([]int32, n)
	prices := make([]float64, n)
	for i := range ints {
		ints[i] = int32(i)
		prices[i] = float64(i%100000) / 100
	}
	if err := conn.Append("big", ints, prices); err != nil {
		log.Fatal(err)
	}

	res, err := conn.Query(`SELECT i, price FROM big`)
	if err != nil {
		log.Fatal(err)
	}

	// 1. Zero-copy: fetching the raw int column costs O(1) — it is the
	//    engine's array, not a copy.
	start := time.Now()
	raw, err := res.Column(0).Ints32()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("zero-copy fetch of %d ints:   %10s (slice aliases engine memory)\n",
		len(raw), time.Since(start).Round(time.Nanosecond))

	// 2. Lazy conversion: the decimal column converts to float64 on FIRST
	//    access and is cached afterwards.
	start = time.Now()
	floats := res.Column(1).AsFloats()
	first := time.Since(start)
	start = time.Now()
	_ = res.Column(1).AsFloats()
	second := time.Since(start)
	fmt.Printf("lazy decimal->float convert:  %10s first touch, %s cached\n",
		first.Round(time.Microsecond), second.Round(time.Nanosecond))
	fmt.Printf("  price[123456] = %.2f\n", floats[123456])

	// 3. Copy-on-write discipline: the zero-copy view is read-only by
	//    contract; Materialize returns a private copy you may mutate.
	private := res.Column(0).Materialize()
	mine, _ := private.Ints32()
	mine[0] = -1
	fmt.Printf("after mutating the copy: private[0]=%d, shared[0]=%d\n", mine[0], raw[0])

	// 4. SELECT * then touch one column — the pattern lazy conversion wins
	//    on (the paper: users often SELECT * and read a few columns).
	res2, err := conn.Query(`SELECT * FROM big`)
	if err != nil {
		log.Fatal(err)
	}
	start = time.Now()
	_ = res2.Column(0).AsInts() // only this column pays conversion
	fmt.Printf("SELECT * + touch 1 of 2 cols: %10s\n", time.Since(start).Round(time.Microsecond))
}
