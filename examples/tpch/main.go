// TPC-H analytics example: generate the benchmark dataset, load it through
// the bulk append path, and run the paper's evaluation queries — the
// "analytical workload on a persistent store" scenario of §4.2.
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"monetlite"
	"monetlite/internal/tpch"
)

func main() {
	sf := flag.Float64("sf", 0.01, "scale factor")
	flag.Parse()

	fmt.Printf("generating TPC-H SF %g...\n", *sf)
	data := tpch.Generate(*sf, 42)

	db, err := monetlite.OpenInMemory()
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	start := time.Now()
	if err := tpch.LoadInto(db, data); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("loaded %d rows in %s\n\n", data.TotalRows(), time.Since(start).Round(time.Millisecond))

	conn := db.Connect()
	for _, q := range tpch.QueryNumbers {
		start := time.Now()
		res, err := conn.Query(tpch.Queries[q])
		if err != nil {
			log.Fatalf("Q%d: %v", q, err)
		}
		fmt.Printf("Q%-2d  %4d rows  %8s\n", q, res.NumRows(), time.Since(start).Round(time.Microsecond))
	}

	// Show the pricing summary report (Q1) in full — the classic demo.
	fmt.Println("\nQ1 — pricing summary report:")
	res, err := conn.Query(tpch.Queries[1])
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(res.Names())
	for i := 0; i < res.NumRows(); i++ {
		fmt.Println(res.RowStrings(i))
	}
}
