// ACS survey-analysis example: the paper's §4.3 workflow. The 274-column
// census extract is stored persistently in the embedded database; filtering
// and grouping run as SQL; the survey statistics (weighted estimates with
// replicate-weight standard errors, like the R survey package) run host-side
// on exported columns.
package main

import (
	"flag"
	"fmt"
	"log"

	"monetlite"
	"monetlite/internal/acs"
)

func main() {
	persons := flag.Int("n", 50000, "person records to generate")
	flag.Parse()

	data := acs.Generate(*persons, 7)
	db, err := monetlite.OpenInMemory()
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()
	conn := db.Connect()
	if _, err := conn.Exec(data.DDL()); err != nil {
		log.Fatal(err)
	}
	if err := conn.Append("acs_persons", data.Cols...); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("loaded %d persons x %d columns\n\n", data.Rows, len(data.Cols))

	// Represented population per state: pure SQL.
	res, err := conn.Query(`
		SELECT st, sum(pwgtp) AS population, count(*) AS sample
		FROM acs_persons GROUP BY st ORDER BY population DESC`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("state  population  sample")
	for i := 0; i < res.NumRows(); i++ {
		r := res.RowStrings(i)
		fmt.Printf("%5s  %10s  %6s\n", r[0], r[1], r[2])
	}

	// Adults in California: filter in SQL, estimate host-side with
	// replicate-weight standard errors.
	q := `SELECT pwgtp, pwgtp1, pwgtp2, pwgtp3, pwgtp4, agep, pincp, hicov
	      FROM acs_persons WHERE st = 6 AND agep >= 18`
	res, err = conn.Query(q)
	if err != nil {
		log.Fatal(err)
	}
	w, err := res.Column(0).Ints32()
	if err != nil {
		log.Fatal(err)
	}
	reps := make([][]int32, 4)
	for r := 0; r < 4; r++ {
		reps[r], err = res.Column(1 + r).Ints32()
		if err != nil {
			log.Fatal(err)
		}
	}
	age := res.Column(5).AsFloats()
	income := res.Column(6).AsFloats()
	hicov, err := res.Column(7).Ints32()
	if err != nil {
		log.Fatal(err)
	}

	total := acs.WeightedTotal(w, reps)
	meanAge := acs.WeightedMean(age, w, reps)
	medianInc := acs.WeightedQuantile(income, w, reps, 0.5)
	mask := make([]bool, len(hicov))
	for i, h := range hicov {
		mask[i] = h == 1
	}
	covered := acs.WeightedRatio(mask, w, reps)

	fmt.Println("\nCalifornia adults (survey estimates ± SE):")
	fmt.Printf("  population     %12.0f ± %.0f\n", total.Value, total.SE)
	fmt.Printf("  mean age       %12.2f ± %.2f\n", meanAge.Value, meanAge.SE)
	fmt.Printf("  median income  %12.0f ± %.0f\n", medianInc.Value, medianInc.SE)
	fmt.Printf("  insured share  %12.3f ± %.3f\n", covered.Value, covered.SE)
}
