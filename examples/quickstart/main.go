// Quickstart: the embedded-database workflow of the paper's introduction.
// No server, no configuration — open a directory, issue SQL, get columnar
// results back at zero copy cost.
package main

import (
	"fmt"
	"log"
	"os"

	"monetlite"
)

func main() {
	dir, err := os.MkdirTemp("", "monetlite-quickstart-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	// monetdb_startup: open (or create) a persistent database.
	db, err := monetlite.Open(dir)
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	// monetdb_connect: connections are cheap query contexts.
	conn := db.Connect()

	if _, err := conn.Exec(`
		CREATE TABLE weather (
			city     VARCHAR(32),
			day      DATE,
			temp_max DOUBLE,
			rain_mm  DECIMAL(6,2));
		INSERT INTO weather VALUES
			('Amsterdam', DATE '2016-06-01', 18.5, 0.30),
			('Amsterdam', DATE '2016-06-02', 21.0, 0.00),
			('Turin',     DATE '2016-06-01', 27.5, 0.00),
			('Turin',     DATE '2016-06-02', 29.0, 1.20)`); err != nil {
		log.Fatal(err)
	}

	// Standard analytical SQL.
	res, err := conn.Query(`
		SELECT city, avg(temp_max) AS avg_max, sum(rain_mm) AS total_rain
		FROM weather GROUP BY city ORDER BY avg_max DESC`)
	if err != nil {
		log.Fatal(err)
	}
	for i := 0; i < res.NumRows(); i++ {
		fmt.Println(res.RowStrings(i))
	}

	// Bulk ingestion without SQL parsing (monetdb_append).
	if err := conn.Append("weather",
		[]string{"Lingotto"},
		[]string{"2016-06-03"},
		[]float64{31.0},
		[]float64{0},
	); err != nil {
		log.Fatal(err)
	}

	// Zero-copy access: the float64 slice aliases engine memory.
	res, err = conn.Query(`SELECT temp_max FROM weather WHERE city = 'Turin'`)
	if err != nil {
		log.Fatal(err)
	}
	temps, err := res.Column(0).Floats64()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Turin maxima (zero-copy):", temps)

	// The database persists across Close/Open.
	if err := db.Close(); err != nil {
		log.Fatal(err)
	}
	db2, err := monetlite.Open(dir)
	if err != nil {
		log.Fatal(err)
	}
	defer db2.Close()
	res, err = db2.Connect().Query(`SELECT count(*) FROM weather`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("rows after reopen:", res.RowStrings(0)[0])
}
