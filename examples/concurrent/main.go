// Concurrency example: multiple connections on one embedded database —
// inter-query parallelism, snapshot isolation, and the optimistic
// write-conflict abort of §3.1/§3.2.
package main

import (
	"errors"
	"fmt"
	"log"
	"sync"

	"monetlite"
	"monetlite/internal/txn"
)

func main() {
	db, err := monetlite.OpenInMemory()
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	setup := db.Connect()
	if _, err := setup.Exec(`CREATE TABLE events (src INTEGER, v INTEGER)`); err != nil {
		log.Fatal(err)
	}

	// Inter-query parallelism: several connections querying at once.
	var wg sync.WaitGroup
	for src := 0; src < 4; src++ {
		wg.Add(1)
		go func(src int) {
			defer wg.Done()
			conn := db.Connect()
			for i := 0; i < 50; i++ {
				if _, err := conn.Exec(
					fmt.Sprintf("INSERT INTO events VALUES (%d, %d)", src, i)); err != nil {
					log.Printf("writer %d: %v", src, err)
					return
				}
			}
		}(src)
	}
	wg.Wait()
	res, err := setup.Query(`SELECT src, count(*), max(v) FROM events GROUP BY src ORDER BY src`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("per-writer counts after concurrent autocommit inserts:")
	for i := 0; i < res.NumRows(); i++ {
		fmt.Println(" ", res.RowStrings(i))
	}

	// Snapshot isolation: a reader's snapshot is stable while writers commit.
	reader := db.Connect()
	writer := db.Connect()
	if err := reader.Begin(); err != nil {
		log.Fatal(err)
	}
	before, _ := reader.Query(`SELECT count(*) FROM events`)
	if _, err := writer.Exec(`INSERT INTO events VALUES (99, 1)`); err != nil {
		log.Fatal(err)
	}
	after, _ := reader.Query(`SELECT count(*) FROM events`)
	fmt.Printf("\nreader snapshot: %s rows before writer commit, %s after (unchanged)\n",
		before.RowStrings(0)[0], after.RowStrings(0)[0])
	reader.Rollback()

	// Optimistic concurrency: the second writer to commit on the same table
	// aborts with a write conflict (the paper's abort-on-conflict model).
	c1, c2 := db.Connect(), db.Connect()
	c1.Begin()
	c2.Begin()
	c1.Exec(`INSERT INTO events VALUES (1, 100)`)
	c2.Exec(`INSERT INTO events VALUES (2, 200)`)
	if err := c1.Commit(); err != nil {
		log.Fatal(err)
	}
	err = c2.Commit()
	switch {
	case errors.Is(err, txn.ErrWriteConflict):
		fmt.Println("\nsecond committer aborted with a write conflict (as designed)")
	case err == nil:
		fmt.Println("\nunexpected: second commit succeeded")
	default:
		log.Fatal(err)
	}
}
