package monetlite

import (
	"fmt"
	"math/rand"
	"strconv"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// The mixed-workload differential harness: N writers ingest and delete rows
// in disjoint id ranges while M readers scan concurrently. Correctness is
// checked three ways:
//
//  1. Every read answer must correspond to a prefix of some writer-local
//     commit history (snapshot isolation: a snapshot sees, per writer, the
//     state after its first k commits for some k).
//  2. The final table state must equal a serialized oracle: the same ops
//     replayed one writer at a time into a fresh database.
//  3. The run must actually exercise the delta store: reads that observed a
//     nonempty pending delta and background merges are both counted, and the
//     test fails if either never happened (no accidental serialization).

type writerState struct{ count, sum int64 }

func TestMixedWorkloadDifferential(t *testing.T) {
	const (
		writers      = 4
		readers      = 3
		opsPerWriter = 60
		batchRows    = 8
	)
	db, err := OpenInMemory(Config{Parallel: true, DeltaMergeRows: 128, DeltaMergeRatio: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	setup := db.Connect()
	mustExec(t, setup, `CREATE TABLE mix (wr INTEGER, id INTEGER, val INTEGER)`)

	var (
		wg      sync.WaitGroup
		done    atomic.Bool
		states  [writers][]writerState // per-writer commit-prefix states
		opLogs  [writers][]string      // per-writer SQL ops, commit order
		obsMu   sync.Mutex
		obsErrs []string
		obs     [][3]int64 // (writer, count, sum) observations from readers
	)

	// Writers: disjoint id ranges, so no two writers ever touch the same row
	// and region-level validation must never abort a commit.
	for w := 0; w < writers; w++ {
		states[w] = []writerState{{0, 0}}
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			conn := db.Connect()
			rng := rand.New(rand.NewSource(int64(1000 + w)))
			live := map[int]int{} // id -> val
			nextID := w * 1_000_000
			cur := writerState{}
			for op := 0; op < opsPerWriter; op++ {
				var sql string
				if len(live) > 0 && rng.Intn(5) == 0 {
					// Delete one of our own live rows.
					var id int
					k := rng.Intn(len(live))
					for cand := range live {
						if k == 0 {
							id = cand
							break
						}
						k--
					}
					sql = fmt.Sprintf(`DELETE FROM mix WHERE id = %d`, id)
					cur.count--
					cur.sum -= int64(live[id])
					delete(live, id)
				} else {
					vals := ""
					for i := 0; i < batchRows; i++ {
						id := nextID
						nextID++
						v := id % 97
						live[id] = v
						cur.count++
						cur.sum += int64(v)
						if i > 0 {
							vals += ", "
						}
						vals += fmt.Sprintf("(%d, %d, %d)", w, id, v)
					}
					sql = `INSERT INTO mix VALUES ` + vals
				}
				if _, err := conn.Exec(sql); err != nil {
					obsMu.Lock()
					obsErrs = append(obsErrs, fmt.Sprintf("writer %d op %d: %v", w, op, err))
					obsMu.Unlock()
					return
				}
				states[w] = append(states[w], cur)
				opLogs[w] = append(opLogs[w], sql)
			}
		}(w)
	}

	// Readers: scan concurrently, recording per-writer (count, sum).
	var rg sync.WaitGroup
	for r := 0; r < readers; r++ {
		rg.Add(1)
		go func() {
			defer rg.Done()
			conn := db.Connect()
			for !done.Load() {
				res, err := conn.Query(`SELECT wr, count(*), sum(val) FROM mix GROUP BY wr ORDER BY wr`)
				if err != nil {
					obsMu.Lock()
					obsErrs = append(obsErrs, fmt.Sprintf("reader: %v", err))
					obsMu.Unlock()
					return
				}
				local := make([][3]int64, 0, res.NumRows())
				for i := 0; i < res.NumRows(); i++ {
					row := res.RowStrings(i)
					w, _ := strconv.ParseInt(row[0], 10, 64)
					n, _ := strconv.ParseInt(row[1], 10, 64)
					s, _ := strconv.ParseInt(row[2], 10, 64)
					local = append(local, [3]int64{w, n, s})
				}
				obsMu.Lock()
				obs = append(obs, local...)
				obsMu.Unlock()
			}
		}()
	}

	wg.Wait()
	done.Store(true)
	rg.Wait()
	for _, e := range obsErrs {
		t.Error(e)
	}
	if t.Failed() {
		t.FailNow()
	}

	// (1) Every observation must be a prefix state of that writer's history.
	prefix := make([]map[writerState]bool, writers)
	for w := range prefix {
		prefix[w] = map[writerState]bool{}
		for _, s := range states[w] {
			prefix[w][s] = true
		}
	}
	for _, o := range obs {
		w := int(o[0])
		if w < 0 || w >= writers {
			t.Fatalf("observed unknown writer %d", w)
		}
		if !prefix[w][writerState{o[1], o[2]}] {
			t.Fatalf("reader saw writer %d at (count=%d sum=%d): not a commit-prefix state", w, o[1], o[2])
		}
	}

	// (2) Final state must equal the serialized oracle replay.
	oracle, err := OpenInMemory(Config{Parallel: false, NoDeltaMerge: true})
	if err != nil {
		t.Fatal(err)
	}
	defer oracle.Close()
	oc := oracle.Connect()
	mustExec(t, oc, `CREATE TABLE mix (wr INTEGER, id INTEGER, val INTEGER)`)
	for w := 0; w < writers; w++ {
		for _, sql := range opLogs[w] {
			mustExec(t, oc, sql)
		}
	}
	got := resultGrid(mustQuery(t, setup, `SELECT wr, id, val FROM mix ORDER BY id`))
	want := resultGrid(mustQuery(t, oc, `SELECT wr, id, val FROM mix ORDER BY id`))
	if len(got) != len(want) {
		t.Fatalf("final rows = %d, oracle = %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("final state diverges from serialized oracle at row %d: %q vs %q", i, got[i], want[i])
		}
	}

	// (3) Overlap proof: readers must have scanned through nonempty deltas,
	// and the background merger must have folded at least one of them.
	var readsWithDelta uint64
	for _, s := range db.DeltaStats() {
		readsWithDelta += s.ReadsWithDelta
	}
	if readsWithDelta == 0 {
		t.Fatal("no read ever overlapped a pending delta: workload serialized")
	}
	mustExec(t, setup, `INSERT INTO mix VALUES (99, 99000000, 0)`) // wake merger
	deadline := time.Now().Add(5 * time.Second)
	merged := false
	for time.Now().Before(deadline) {
		for _, s := range db.DeltaStats() {
			if s.Merges > 0 {
				merged = true
			}
		}
		if merged {
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	if !merged {
		t.Fatal("background merger never fired under threshold pressure")
	}
	if lg := db.MergeLog(); len(lg) == 0 {
		t.Fatal("merge fired but storage.deltamerge trace log is empty")
	}
}

// BenchmarkMixedWorkload measures reader latency (reporting p99) while 0, 1,
// or 4 background writers append concurrently — the serving-path regression
// the delta store exists to prevent (writers used to copy whole columns and
// abort one another).
func BenchmarkMixedWorkload(b *testing.B) {
	for _, nw := range []int{0, 1, 4} {
		b.Run(fmt.Sprintf("w%d", nw), func(b *testing.B) {
			db, err := OpenInMemory(Config{Parallel: true, DeltaMergeRows: 4096})
			if err != nil {
				b.Fatal(err)
			}
			defer db.Close()
			c := db.Connect()
			if _, err := c.Exec(`CREATE TABLE mix (id INTEGER, val INTEGER)`); err != nil {
				b.Fatal(err)
			}
			for base := 0; base < 50_000; base += 1000 {
				vals := ""
				for i := 0; i < 1000; i++ {
					if i > 0 {
						vals += ", "
					}
					vals += fmt.Sprintf("(%d, %d)", base+i, (base+i)%97)
				}
				if _, err := c.Exec(`INSERT INTO mix VALUES ` + vals); err != nil {
					b.Fatal(err)
				}
			}
			var stop atomic.Bool
			var wg sync.WaitGroup
			for w := 0; w < nw; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					wc := db.Connect()
					id := 1_000_000 * (w + 1)
					for !stop.Load() {
						vals := ""
						for i := 0; i < 64; i++ {
							if i > 0 {
								vals += ", "
							}
							vals += fmt.Sprintf("(%d, %d)", id, id%97)
							id++
						}
						if _, err := wc.Exec(`INSERT INTO mix VALUES ` + vals); err != nil {
							return
						}
					}
				}(w)
			}
			rc := db.Connect()
			lat := make([]time.Duration, 0, b.N)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				t0 := time.Now()
				if _, err := rc.Query(`SELECT count(*), sum(val) FROM mix WHERE val < 50`); err != nil {
					b.Fatal(err)
				}
				lat = append(lat, time.Since(t0))
			}
			b.StopTimer()
			stop.Store(true)
			wg.Wait()
			if len(lat) > 0 {
				sorted := append([]time.Duration(nil), lat...)
				for i := 1; i < len(sorted); i++ { // insertion sort: small N
					for j := i; j > 0 && sorted[j] < sorted[j-1]; j-- {
						sorted[j], sorted[j-1] = sorted[j-1], sorted[j]
					}
				}
				p99 := sorted[len(sorted)*99/100]
				b.ReportMetric(float64(p99.Nanoseconds()), "p99-ns")
			}
		})
	}
}
