package monetlite

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"monetlite/internal/faultfs"
	"monetlite/internal/mtypes"
	"monetlite/internal/storage"
	"monetlite/internal/txn"
	"monetlite/internal/vec"
	"monetlite/internal/wal"
)

// Crash-point tests for compressed tables, reusing the faultfs harness from
// the WAL crash fuzzer: the persistent base is a checkpointed MLC2 (encoded)
// image on a real directory, the WAL lives on a SimFS armed to crash after a
// random number of filesystem calls, and recovery must replay the
// acknowledged commits on top of the encoded base — which forces the
// decode-on-append path during replay.

func encCrashMeta() storage.TableMeta {
	return storage.TableMeta{Name: "t", Cols: []storage.ColDef{
		{Name: "a", Typ: mtypes.Int},
		{Name: "s", Typ: mtypes.Varchar},
	}}
}

func encCrashBatch(base, n int) []*vec.Vector {
	a := vec.New(mtypes.Int, n)
	s := vec.New(mtypes.Varchar, n)
	for i := 0; i < n; i++ {
		a.I32[i] = int32(base + i)
		if (base+i)%13 == 0 {
			s.SetNull(i)
		} else {
			s.Str[i] = []string{"oslo", "kyoto", "lima"}[(base+i)%3]
		}
	}
	return []*vec.Vector{a, s}
}

// buildEncodedBase checkpoints an encoded 1500-row table into dir.
func buildEncodedBase(t *testing.T, dir string) {
	t.Helper()
	st, err := storage.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	tbl, err := st.CreateTable(encCrashMeta())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tbl.Append(encCrashBatch(0, 1500), st.BumpVersion()); err != nil {
		t.Fatal(err)
	}
	if n, err := tbl.EncodeColumns(); err != nil || n != 2 {
		t.Fatalf("encode: n=%d err=%v", n, err)
	}
	if err := st.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestEncodedBaseCrashRecovery(t *testing.T) {
	for seed := int64(0); seed < 6; seed++ {
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			dir := t.TempDir()
			buildEncodedBase(t, dir)

			// Post-checkpoint workload on a crash-armed WAL filesystem.
			fs := faultfs.NewSim(seed)
			fs.SetKeep(faultfs.KeepSynced)
			fs.CrashAtCalls(1 + rng.Intn(40))
			st, err := storage.Open(dir)
			if err != nil {
				t.Fatal(err)
			}
			log, _, err := wal.OpenFS(fs, "wal.log")
			if err != nil {
				t.Fatal(err)
			}
			mgr := txn.NewManager(st, log)
			acked, next := 0, 1500
			var ackedRows int
			for i := 0; i < 10; i++ {
				n := 1 + rng.Intn(20)
				tx := mgr.Begin()
				if err := tx.Append("t", encCrashBatch(next, n)); err != nil {
					break
				}
				if err := tx.Commit(); err != nil {
					break
				}
				acked++
				ackedRows += n
				next += n
			}
			if !fs.Crashed() {
				fs.CrashNow() // crash point beyond the workload: kill at the end
			}

			// Recovery: replay the surviving WAL over the encoded base.
			img := fs.AfterCrash()
			st2, err := storage.Open(dir)
			if err != nil {
				t.Fatal(err)
			}
			rlog, rep, err := wal.OpenFS(img, "wal.log")
			if err != nil {
				t.Fatalf("recovery open (report %+v): %v", rep, err)
			}
			if err := txn.ReplayLog(st2, rlog); err != nil {
				t.Fatalf("replay over encoded base: %v", err)
			}
			tbl, ok := st2.Get("t")
			if !ok {
				t.Fatal("table lost")
			}
			tv := tbl.Version()
			want := 1500 + ackedRows
			if tv.NRows != want {
				t.Fatalf("recovered %d rows, want %d (acked %d commits)", tv.NRows, want, acked)
			}
			a, err := tv.Col(0)
			if err != nil {
				t.Fatal(err)
			}
			s, err := tv.Col(1)
			if err != nil {
				t.Fatal(err)
			}
			for i := 0; i < tv.NRows; i++ {
				if a.I32[i] != int32(i) {
					t.Fatalf("row %d: a=%d", i, a.I32[i])
				}
				if i%13 == 0 {
					if !s.IsNull(i) {
						t.Fatalf("row %d: want NULL, got %q", i, s.Str[i])
					}
				} else if s.Str[i] != []string{"oslo", "kyoto", "lima"}[i%3] {
					t.Fatalf("row %d: s=%q", i, s.Str[i])
				}
			}
			// The recovered state checkpoints and reopens cleanly (the next
			// checkpoint re-encodes the grown column).
			if err := st2.Checkpoint(); err != nil {
				t.Fatal(err)
			}
			if err := st2.Close(); err != nil {
				t.Fatal(err)
			}
			rlog.Close()
			st3, err := storage.Open(dir)
			if err != nil {
				t.Fatal(err)
			}
			defer st3.Close()
			tbl3, _ := st3.Get("t")
			a3, err := tbl3.Version().Col(0)
			if err != nil {
				t.Fatal(err)
			}
			if a3.Len() != want || a3.I32[want-1] != int32(want-1) {
				t.Fatalf("post-recovery checkpoint round trip: len=%d", a3.Len())
			}
		})
	}
}

// An encoded table served through SQL keeps answering identically after a
// hard crash (no checkpoint on the post-encode inserts) — end-to-end version
// of the storage-level test, through Database/Conn.
func TestEncodedTableCrashRecoverySQL(t *testing.T) {
	dir := t.TempDir() + "/db"
	db, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	c := db.Connect()
	mustExec(t, c, `CREATE TABLE t (a INTEGER, s VARCHAR)`)
	var sb strings.Builder
	sb.WriteString(`INSERT INTO t VALUES `)
	for i := 0; i < 1500; i++ {
		if i > 0 {
			sb.WriteString(",")
		}
		fmt.Fprintf(&sb, "(%d,'%s')", i, []string{"oslo", "kyoto", "lima"}[i%3])
	}
	mustExec(t, c, sb.String())
	if n, err := db.EncodeColumns(); err != nil || n == 0 {
		t.Fatalf("EncodeColumns: n=%d err=%v", n, err)
	}
	if err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	mustExec(t, c, `INSERT INTO t VALUES (9001,'quito'), (9002,'oslo')`)
	oracle := resultGrid(mustQuery(t, c, `SELECT s, count(*), min(a), max(a) FROM t GROUP BY s ORDER BY s`))

	// Simulate crash: release handles without checkpointing the tail.
	db.mu.Lock()
	db.closed = true
	db.log.Close()
	db.store.Close()
	db.mu.Unlock()

	db2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	got := resultGrid(mustQuery(t, db2.Connect(), `SELECT s, count(*), min(a), max(a) FROM t GROUP BY s ORDER BY s`))
	if len(got) != len(oracle) {
		t.Fatalf("recovered %d groups, want %d", len(got), len(oracle))
	}
	for i := range got {
		if got[i] != oracle[i] {
			t.Fatalf("group %d: %q vs oracle %q", i, got[i], oracle[i])
		}
	}
}
