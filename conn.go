package monetlite

import (
	"context"
	"errors"
	"fmt"

	"monetlite/internal/exec"
	"monetlite/internal/mal"
	"monetlite/internal/mtypes"
	"monetlite/internal/plan"
	"monetlite/internal/sqlparse"
	"monetlite/internal/storage"
	"monetlite/internal/txn"
	"monetlite/internal/vec"
)

// Conn is a database connection: a lightweight query context with its own
// transaction state. Connections are not safe for concurrent use; open one
// connection per goroutine (connections themselves are cheap).
type Conn struct {
	db  *Database
	tx  *txn.Txn        // explicit transaction, nil in autocommit mode
	ctx context.Context // active query context (QueryContext/ExecContext)

	// LastTrace holds the MAL instruction trace of the last query when
	// TraceMAL is set (EXPLAIN-style introspection and tests).
	TraceMAL  bool
	LastTrace *mal.Program

	// NoJoinReorder keeps the written join order (predicates still push
	// down). A debugging/baseline knob: queries bound with it bypass the
	// plan cache, which stores only fully optimized plans.
	NoJoinReorder bool
}

// ErrTxnOpen is returned by BEGIN when a transaction is already open.
var ErrTxnOpen = errors.New("monetlite: transaction already open")

// ErrNoTxn is returned by COMMIT/ROLLBACK without an open transaction.
var ErrNoTxn = errors.New("monetlite: no transaction open")

// Query executes one SQL statement and returns its result (nil result with
// rows-affected semantics for DML/DDL). Positional parameters (?) are bound
// from args.
func (c *Conn) Query(sql string, args ...any) (*Result, error) {
	return c.QueryContext(context.Background(), sql, args...)
}

// QueryContext is Query with cancellation: when ctx is cancelled or its
// deadline passes, query execution aborts within one chunk of work (serial
// and mitosis-parallel paths both) and returns ctx's error.
func (c *Conn) QueryContext(ctx context.Context, sql string, args ...any) (*Result, error) {
	if c.db.isClosed() {
		return nil, ErrClosed
	}
	key := normalizeSQL(sql)
	stmt, err := c.parseOneCached(key, sql)
	if err != nil {
		return nil, err
	}
	params, err := toParams(args)
	if err != nil {
		return nil, err
	}
	c.ctx = ctx
	defer func() { c.ctx = nil }()
	res, _, err := c.runKeyed(stmt, params, key)
	return res, err
}

// parseOneCached parses a single statement through the database's parse
// cache. ASTs are read-only to the binder, so cache hits share the node tree.
func (c *Conn) parseOneCached(key, sql string) (sqlparse.Statement, error) {
	if st, ok := c.db.pc.getParse(key); ok {
		return st, nil
	}
	st, err := sqlparse.ParseOne(sql)
	if err != nil {
		return nil, err
	}
	c.db.pc.putParse(key, st)
	return st, nil
}

// Exec executes one or more semicolon-separated SQL statements, returning
// the total number of affected rows.
func (c *Conn) Exec(sql string, args ...any) (int64, error) {
	return c.ExecContext(context.Background(), sql, args...)
}

// ExecContext is Exec with cancellation: a cancelled ctx aborts the current
// statement and skips the rest of the batch. Statements already committed
// (autocommit is per statement) stay committed.
func (c *Conn) ExecContext(ctx context.Context, sql string, args ...any) (int64, error) {
	if c.db.isClosed() {
		return 0, ErrClosed
	}
	key := normalizeSQL(sql)
	var stmts []sqlparse.Statement
	if st, ok := c.db.pc.getParse(key); ok {
		stmts = []sqlparse.Statement{st}
	} else {
		var err error
		stmts, err = sqlparse.Parse(sql)
		if err != nil {
			return 0, err
		}
		if len(stmts) == 1 {
			c.db.pc.putParse(key, stmts[0])
		}
	}
	params, err := toParams(args)
	if err != nil {
		return 0, err
	}
	c.ctx = ctx
	defer func() { c.ctx = nil }()
	var total int64
	for _, stmt := range stmts {
		if err := ctx.Err(); err != nil {
			return total, err
		}
		_, n, err := c.run(stmt, params)
		if err != nil {
			return total, err
		}
		total += n
	}
	return total, nil
}

// Begin starts an explicit transaction on this connection.
func (c *Conn) Begin() error {
	if c.tx != nil {
		return ErrTxnOpen
	}
	c.tx = c.db.mgr.Begin()
	return nil
}

// Commit commits the open transaction (write conflicts abort with
// txn.ErrWriteConflict, matching the paper's optimistic concurrency model).
func (c *Conn) Commit() error {
	if c.tx == nil {
		return ErrNoTxn
	}
	err := c.tx.Commit()
	c.tx = nil
	return err
}

// Rollback discards the open transaction.
func (c *Conn) Rollback() error {
	if c.tx == nil {
		return ErrNoTxn
	}
	err := c.tx.Rollback()
	c.tx = nil
	return err
}

// InTransaction reports whether an explicit transaction is open.
func (c *Conn) InTransaction() bool { return c.tx != nil }

// run dispatches one parsed statement. It returns a result (SELECT) and/or
// an affected-row count.
func (c *Conn) run(stmt sqlparse.Statement, params []mtypes.Value) (*Result, int64, error) {
	return c.runKeyed(stmt, params, "")
}

// runKeyed is run with a plan-cache key: when pcKey is non-empty and the
// statement is plan-cache eligible, the bound plan is reused/stored under it.
func (c *Conn) runKeyed(stmt sqlparse.Statement, params []mtypes.Value, pcKey string) (*Result, int64, error) {
	// Transaction control first.
	switch stmt.(type) {
	case *sqlparse.BeginStmt:
		return nil, 0, c.Begin()
	case *sqlparse.CommitStmt:
		return nil, 0, c.Commit()
	case *sqlparse.RollbackStmt:
		return nil, 0, c.Rollback()
	case *sqlparse.CheckpointStmt:
		return nil, 0, c.db.Checkpoint()
	}

	// DDL auto-commits through the manager.
	switch x := stmt.(type) {
	case *sqlparse.CreateTableStmt:
		meta, err := metaFromAST(x)
		if err != nil {
			return nil, 0, err
		}
		return nil, 0, c.db.mgr.CreateTable(meta)
	case *sqlparse.DropTableStmt:
		err := c.db.mgr.DropTable(x.Name)
		if x.IfExists && errors.Is(err, storage.ErrNoSuchTable) {
			// IF EXISTS forgives only the table being absent. WAL append or
			// commit failures mean the drop may not be durable and must
			// surface — swallowing them here silently corrupted recovery.
			return nil, 0, nil
		}
		return nil, 0, err
	case *sqlparse.CreateIndexStmt:
		return nil, 0, c.createIndex(x)
	}

	// DML/queries run inside the explicit transaction or an autocommit one.
	//
	// Plan-cache eligibility: autocommit only (an explicit transaction's
	// snapshot can predate a concurrent DDL, so its catalog view may not
	// match the current schema version the cache keys on) and param-free only
	// (parameters bind as constants inside the plan). The schema version is
	// read before Begin: monotonicity then guarantees a cached plan is served
	// only while no DDL has happened since before its snapshot was taken.
	if c.tx != nil || len(params) != 0 || c.NoJoinReorder {
		pcKey = ""
	}
	schema, stats := uint64(0), uint64(0)
	if pcKey != "" {
		schema = c.db.store.SchemaVersion()
		stats = c.db.store.StatsVersion()
	}
	tx := c.tx
	auto := tx == nil
	if auto {
		tx = c.db.mgr.Begin()
	}
	res, n, err := c.runInTxn(stmt, tx, params, pcKey, schema, stats)
	if err != nil {
		if auto {
			tx.Rollback()
		}
		return nil, 0, err
	}
	if auto {
		if err := tx.Commit(); err != nil {
			return nil, 0, err
		}
	}
	return res, n, nil
}

func (c *Conn) engine(tx *txn.Txn) *exec.Engine {
	e := &exec.Engine{
		Cat:        execCatalog{tx},
		Parallel:   c.db.cfg.Parallel,
		MaxThreads: c.db.cfg.MaxThreads,
		NoIndexes:  c.db.cfg.NoIndexes,
		Timeout:    c.db.cfg.QueryTimeout,
		Ctx:        c.ctx,
	}
	if c.TraceMAL {
		c.LastTrace = &mal.Program{}
		e.Trace = c.LastTrace
	}
	return e
}

func (c *Conn) runInTxn(stmt sqlparse.Statement, tx *txn.Txn, params []mtypes.Value, pcKey string, schema, stats uint64) (*Result, int64, error) {
	cat := snapshotCatalog{tx}
	switch x := stmt.(type) {
	case *sqlparse.SelectStmt:
		var q *plan.BoundQuery
		cached := false
		if pcKey != "" {
			q, cached = c.db.pc.getPlan(pcKey, schema, stats)
		}
		eng := c.engine(tx)
		if pcKey != "" {
			if cached {
				eng.Trace.Emit("sql.plancache", "hit")
			} else {
				eng.Trace.Emit("sql.plancache", "miss")
			}
		}
		if !cached {
			var err error
			q, err = plan.BindSelectWith(cat, x, params, plan.OptOpts{NoJoinReorder: c.NoJoinReorder})
			if err != nil {
				return nil, 0, err
			}
			if pcKey != "" {
				c.db.pc.putPlan(pcKey, q, schema, stats)
			}
		}
		er, err := eng.Execute(q.Plan)
		if err != nil {
			return nil, 0, err
		}
		return c.newResult(er), int64(er.NumRows()), nil
	case *sqlparse.InsertStmt:
		ins, err := plan.BindInsert(cat, x, params)
		if err != nil {
			return nil, 0, err
		}
		cols := ins.Values
		if ins.Query != nil {
			er, err := c.engine(tx).Execute(ins.Query)
			if err != nil {
				return nil, 0, err
			}
			cols = er.Cols
		}
		if len(cols) == 0 || cols[0].Len() == 0 {
			return nil, 0, nil
		}
		if err := tx.Append(ins.Table, cols); err != nil {
			return nil, 0, err
		}
		return nil, int64(cols[0].Len()), nil
	case *sqlparse.DeleteStmt:
		del, err := plan.BindDelete(cat, x, params)
		if err != nil {
			return nil, 0, err
		}
		view, ok := tx.View(del.Table)
		if !ok {
			return nil, 0, fmt.Errorf("monetlite: no such table %q", del.Table)
		}
		rows, err := c.engine(tx).SelectRows(viewSource{view}, del.Pred)
		if err != nil {
			return nil, 0, err
		}
		n, err := tx.Delete(del.Table, rows)
		return nil, int64(n), err
	case *sqlparse.UpdateStmt:
		return c.runUpdate(tx, cat, x, params)
	default:
		return nil, 0, fmt.Errorf("monetlite: unsupported statement %T", stmt)
	}
}

// runUpdate implements UPDATE as delete+append of the rewritten rows within
// one transaction (MonetDB-style delta semantics; row ids are not stable
// across updates — see DESIGN.md).
func (c *Conn) runUpdate(tx *txn.Txn, cat snapshotCatalog, x *sqlparse.UpdateStmt, params []mtypes.Value) (*Result, int64, error) {
	up, err := plan.BindUpdate(cat, x, params)
	if err != nil {
		return nil, 0, err
	}
	view, ok := tx.View(up.Table)
	if !ok {
		return nil, 0, fmt.Errorf("monetlite: no such table %q", up.Table)
	}
	eng := c.engine(tx)
	rows, err := eng.SelectRows(viewSource{view}, up.Pred)
	if err != nil {
		return nil, 0, err
	}
	if len(rows) == 0 {
		return nil, 0, nil
	}
	meta := view.Meta()
	// Gather the affected rows, compute the new column values.
	oldCols := make([]*vec.Vector, len(meta.Cols))
	for i := range meta.Cols {
		full, err := view.Col(i)
		if err != nil {
			return nil, 0, err
		}
		oldCols[i] = vec.Gather(full, rows)
	}
	setFor := map[int]plan.Expr{}
	for k, ci := range up.SetCols {
		setFor[ci] = up.SetExprs[k]
	}
	newCols := make([]*vec.Vector, len(meta.Cols))
	for i := range meta.Cols {
		if e, ok := setFor[i]; ok {
			v, err := evalOverRows(e, oldCols, len(rows))
			if err != nil {
				return nil, 0, err
			}
			newCols[i] = v
		} else {
			newCols[i] = oldCols[i]
		}
	}
	if _, err := tx.Delete(up.Table, rows); err != nil {
		return nil, 0, err
	}
	if err := tx.Append(up.Table, newCols); err != nil {
		return nil, 0, err
	}
	return nil, int64(len(rows)), nil
}

// evalOverRows evaluates a bound expression row-wise over gathered columns
// (UPDATE SET expressions are row-oriented by nature).
func evalOverRows(e plan.Expr, cols []*vec.Vector, n int) (*vec.Vector, error) {
	out := vec.NewCap(e.Type(), n)
	row := make([]mtypes.Value, len(cols))
	for i := 0; i < n; i++ {
		for k, c := range cols {
			row[k] = c.Value(i)
		}
		v, err := plan.EvalRow(e, &plan.EvalCtx{Row: row})
		if err != nil {
			return nil, err
		}
		out.AppendValue(v)
	}
	return out, nil
}

func (c *Conn) createIndex(x *sqlparse.CreateIndexStmt) error {
	if len(x.Cols) != 1 {
		return fmt.Errorf("monetlite: indexes cover exactly one column")
	}
	if x.Ordered {
		return c.db.mgr.CreateOrderIndex(x.Table, x.Cols[0])
	}
	// Plain CREATE INDEX: build the hash index eagerly (MonetDB would build
	// it automatically on first use anyway).
	tbl, ok := c.db.store.Get(x.Table)
	if !ok {
		return fmt.Errorf("monetlite: no such table %q", x.Table)
	}
	ci := tbl.Meta.ColIndex(x.Cols[0])
	if ci < 0 {
		return fmt.Errorf("monetlite: no column %q in table %q", x.Cols[0], x.Table)
	}
	if h := tbl.HashFor(tbl.Version(), ci); h == nil {
		return fmt.Errorf("monetlite: cannot build index on %s.%s", x.Table, x.Cols[0])
	}
	return nil
}

func metaFromAST(x *sqlparse.CreateTableStmt) (storage.TableMeta, error) {
	meta := storage.TableMeta{Name: x.Name}
	for _, cd := range x.Cols {
		kind := mtypes.ParseTypeName(cd.TypeName)
		if kind == mtypes.KUnknown {
			return meta, fmt.Errorf("monetlite: unknown type %q for column %q", cd.TypeName, cd.Name)
		}
		t := mtypes.Type{Kind: kind}
		if kind == mtypes.KDecimal {
			t.Prec, t.Scale = cd.Prec, cd.Scale
			if t.Prec == 0 {
				t.Prec = 18
			}
		}
		if kind == mtypes.KVarchar {
			t.Width = cd.Width
		}
		meta.Cols = append(meta.Cols, storage.ColDef{Name: cd.Name, Typ: t})
	}
	return meta, nil
}

func toParams(args []any) ([]mtypes.Value, error) {
	out := make([]mtypes.Value, len(args))
	for i, a := range args {
		switch v := a.(type) {
		case nil:
			out[i] = mtypes.NullValue(mtypes.Varchar)
		case bool:
			out[i] = mtypes.NewBool(v)
		case int:
			out[i] = mtypes.NewInt(mtypes.BigInt, int64(v))
		case int32:
			out[i] = mtypes.NewInt(mtypes.Int, int64(v))
		case int64:
			out[i] = mtypes.NewInt(mtypes.BigInt, v)
		case float64:
			out[i] = mtypes.NewDouble(v)
		case string:
			out[i] = mtypes.NewString(v)
		default:
			return nil, fmt.Errorf("monetlite: unsupported parameter type %T", a)
		}
	}
	return out, nil
}
