package monetlite

import (
	"errors"
	"testing"

	"monetlite/internal/faultfs"
	"monetlite/internal/storage"
)

// DROP TABLE IF EXISTS must forgive exactly one error — the table being
// absent. It used to swallow every error, including WAL I/O failures, which
// left the drop half-applied in memory while reporting success.

func TestDropTableIfExistsMissingTableIsSilent(t *testing.T) {
	db, err := OpenInMemory()
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	c := db.Connect()
	if _, err := c.Exec(`DROP TABLE IF EXISTS nope`); err != nil {
		t.Fatalf("IF EXISTS on a missing table must be silent, got %v", err)
	}
	// Without IF EXISTS the same drop errors, and with the sentinel.
	_, err = c.Exec(`DROP TABLE nope`)
	if !errors.Is(err, storage.ErrNoSuchTable) {
		t.Fatalf("want ErrNoSuchTable, got %v", err)
	}
}

func TestDropTableIfExistsSurfacesWALFault(t *testing.T) {
	sim := faultfs.NewSim(1)
	db, err := Open(t.TempDir(), Config{Parallel: true, WALFS: sim})
	if err != nil {
		t.Fatal(err)
	}
	c := db.Connect()
	if _, err := c.Exec(`CREATE TABLE victim (a INTEGER)`); err != nil {
		t.Fatal(err)
	}
	// Fail the next WAL operation: the drop's log append/commit breaks while
	// the table exists, so IF EXISTS has no business suppressing the error.
	sim.FailAtCalls(sim.Calls() + 1)
	if _, err := c.Exec(`DROP TABLE IF EXISTS victim`); !errors.Is(err, faultfs.ErrInjected) {
		t.Fatalf("WAL fault during DROP TABLE IF EXISTS must surface, got %v", err)
	}
}
