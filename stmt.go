package monetlite

import (
	"context"

	"monetlite/internal/sqlparse"
)

// Stmt is a prepared statement: the SQL text is parsed once at Prepare time
// and re-executed with fresh parameter bindings. Param-free SELECTs
// additionally reuse the database's bound-plan cache across executions (and
// across connections preparing the same text), so repeated execution skips
// parse, bind and optimize entirely — the paper's motivation for keeping the
// client inside the server process is exactly this kind of per-call overhead.
//
// A Stmt is bound to the connection that prepared it and shares its
// concurrency rules: one goroutine at a time.
type Stmt struct {
	c   *Conn
	key string // normalized text, the plan-cache key
	ast sqlparse.Statement
}

// Prepare parses a single SQL statement for repeated execution.
func (c *Conn) Prepare(sql string) (*Stmt, error) {
	if c.db.isClosed() {
		return nil, ErrClosed
	}
	key := normalizeSQL(sql)
	ast, err := c.parseOneCached(key, sql)
	if err != nil {
		return nil, err
	}
	return &Stmt{c: c, key: key, ast: ast}, nil
}

// Query executes the prepared statement with the given parameter bindings.
func (s *Stmt) Query(args ...any) (*Result, error) {
	return s.QueryContext(context.Background(), args...)
}

// QueryContext is Query with cancellation.
func (s *Stmt) QueryContext(ctx context.Context, args ...any) (*Result, error) {
	if s.c.db.isClosed() {
		return nil, ErrClosed
	}
	params, err := toParams(args)
	if err != nil {
		return nil, err
	}
	s.c.ctx = ctx
	defer func() { s.c.ctx = nil }()
	res, _, err := s.c.runKeyed(s.ast, params, s.key)
	return res, err
}

// Exec executes the prepared statement and returns the affected-row count.
func (s *Stmt) Exec(args ...any) (int64, error) {
	return s.ExecContext(context.Background(), args...)
}

// ExecContext is Exec with cancellation.
func (s *Stmt) ExecContext(ctx context.Context, args ...any) (int64, error) {
	if s.c.db.isClosed() {
		return 0, ErrClosed
	}
	params, err := toParams(args)
	if err != nil {
		return 0, err
	}
	s.c.ctx = ctx
	defer func() { s.c.ctx = nil }()
	_, n, err := s.c.runKeyed(s.ast, params, s.key)
	return n, err
}

// Close releases the statement. The parse and plan caches are shared at the
// database level, so Close has nothing to free; it exists for API symmetry.
func (s *Stmt) Close() error { return nil }
