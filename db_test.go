package monetlite

import (
	"errors"
	"math"
	"path/filepath"
	"strings"
	"testing"

	"monetlite/internal/txn"
)

func memDB(t *testing.T) *Database {
	t.Helper()
	db, err := OpenInMemory()
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	return db
}

func mustExec(t *testing.T, c *Conn, sql string) int64 {
	t.Helper()
	n, err := c.Exec(sql)
	if err != nil {
		t.Fatalf("exec %q: %v", sql, err)
	}
	return n
}

func mustQuery(t *testing.T, c *Conn, sql string, args ...any) *Result {
	t.Helper()
	res, err := c.Query(sql, args...)
	if err != nil {
		t.Fatalf("query %q: %v", sql, err)
	}
	return res
}

// resultGrid renders a result as semicolon-joined rows for compact asserts.
func resultGrid(r *Result) []string {
	out := make([]string, r.NumRows())
	for i := range out {
		out[i] = strings.Join(r.RowStrings(i), "|")
	}
	return out
}

func TestCreateInsertSelect(t *testing.T) {
	db := memDB(t)
	c := db.Connect()
	mustExec(t, c, `CREATE TABLE t (a INTEGER, b VARCHAR, c DECIMAL(10,2), d DATE)`)
	n := mustExec(t, c, `INSERT INTO t VALUES
		(1, 'one', 1.50, DATE '1995-01-01'),
		(2, 'two', 2.25, DATE '1996-06-15'),
		(3, NULL, NULL, NULL)`)
	if n != 3 {
		t.Fatalf("inserted %d", n)
	}
	res := mustQuery(t, c, `SELECT a, b, c, d FROM t ORDER BY a`)
	grid := resultGrid(res)
	want := []string{"1|one|1.50|1995-01-01", "2|two|2.25|1996-06-15", "3|NULL|NULL|NULL"}
	for i := range want {
		if grid[i] != want[i] {
			t.Fatalf("row %d = %q want %q", i, grid[i], want[i])
		}
	}
}

func TestWhereAndExpressions(t *testing.T) {
	db := memDB(t)
	c := db.Connect()
	mustExec(t, c, `CREATE TABLE t (a INTEGER, c DECIMAL(10,2))`)
	mustExec(t, c, `INSERT INTO t VALUES (1, 10.00), (2, 20.00), (3, 30.00), (4, NULL)`)
	res := mustQuery(t, c, `SELECT a, c * (1 - 0.1) FROM t WHERE a BETWEEN 2 AND 3 ORDER BY a`)
	grid := resultGrid(res)
	if len(grid) != 2 || grid[0] != "2|18.000" || grid[1] != "3|27.000" {
		t.Fatalf("grid: %v", grid)
	}
	// NULL never matches.
	res = mustQuery(t, c, `SELECT count(*) FROM t WHERE c > 0`)
	if res.RowStrings(0)[0] != "3" {
		t.Fatalf("null filter: %v", resultGrid(res))
	}
	// IS NULL does.
	res = mustQuery(t, c, `SELECT a FROM t WHERE c IS NULL`)
	if res.NumRows() != 1 || res.RowStrings(0)[0] != "4" {
		t.Fatalf("is null: %v", resultGrid(res))
	}
}

func TestAggregatesEndToEnd(t *testing.T) {
	db := memDB(t)
	c := db.Connect()
	mustExec(t, c, `CREATE TABLE s (grp VARCHAR, v INTEGER)`)
	mustExec(t, c, `INSERT INTO s VALUES ('a', 1), ('a', 2), ('b', 10), ('a', 3), ('b', NULL)`)
	res := mustQuery(t, c, `
		SELECT grp, sum(v) AS total, count(*) AS n, count(v) AS nv, avg(v) AS mean, min(v), max(v)
		FROM s GROUP BY grp ORDER BY grp`)
	grid := resultGrid(res)
	if grid[0] != "a|6|3|3|2|1|3" {
		t.Fatalf("group a: %q", grid[0])
	}
	if grid[1] != "b|10|2|1|10|10|10" {
		t.Fatalf("group b: %q", grid[1])
	}
	// HAVING
	res = mustQuery(t, c, `SELECT grp FROM s GROUP BY grp HAVING sum(v) > 7`)
	if res.NumRows() != 1 || res.RowStrings(0)[0] != "b" {
		t.Fatalf("having: %v", resultGrid(res))
	}
	// Global aggregate over empty input yields one row.
	res = mustQuery(t, c, `SELECT count(*), sum(v) FROM s WHERE v > 1000`)
	if res.NumRows() != 1 || res.RowStrings(0)[0] != "0" || res.RowStrings(0)[1] != "NULL" {
		t.Fatalf("empty agg: %v", resultGrid(res))
	}
}

func TestJoins(t *testing.T) {
	db := memDB(t)
	c := db.Connect()
	mustExec(t, c, `CREATE TABLE l (id INTEGER, txt VARCHAR); CREATE TABLE r (id INTEGER, n INTEGER)`)
	mustExec(t, c, `INSERT INTO l VALUES (1,'x'), (2,'y'), (3,'z')`)
	mustExec(t, c, `INSERT INTO r VALUES (1,100), (1,101), (3,300), (9,900)`)
	res := mustQuery(t, c, `SELECT l.txt, r.n FROM l, r WHERE l.id = r.id ORDER BY r.n`)
	grid := resultGrid(res)
	want := []string{"x|100", "x|101", "z|300"}
	if len(grid) != 3 {
		t.Fatalf("join rows: %v", grid)
	}
	for i := range want {
		if grid[i] != want[i] {
			t.Fatalf("join: %v", grid)
		}
	}
	// Explicit JOIN ... ON with residual.
	res = mustQuery(t, c, `SELECT l.txt FROM l JOIN r ON l.id = r.id AND r.n > 100 ORDER BY r.n`)
	if res.NumRows() != 2 {
		t.Fatalf("on residual: %v", resultGrid(res))
	}
	// LEFT JOIN
	res = mustQuery(t, c, `SELECT l.txt, r.n FROM l LEFT JOIN r ON l.id = r.id ORDER BY l.id, r.n`)
	grid = resultGrid(res)
	if len(grid) != 4 || grid[3] != "y|NULL" && grid[1] != "y|NULL" {
		// y (id=2) must appear with NULL
		found := false
		for _, g := range grid {
			if g == "y|NULL" {
				found = true
			}
		}
		if !found {
			t.Fatalf("left join: %v", grid)
		}
	}
}

func TestSemiAntiJoinViaExists(t *testing.T) {
	db := memDB(t)
	c := db.Connect()
	mustExec(t, c, `CREATE TABLE o (ok INTEGER); CREATE TABLE li (ok INTEGER, cd INTEGER, rd INTEGER)`)
	mustExec(t, c, `INSERT INTO o VALUES (1), (2), (3)`)
	mustExec(t, c, `INSERT INTO li VALUES (1, 5, 9), (2, 9, 5), (1, 9, 9)`)
	res := mustQuery(t, c, `SELECT ok FROM o WHERE EXISTS (SELECT * FROM li WHERE li.ok = o.ok AND li.cd < li.rd) ORDER BY ok`)
	if len(resultGrid(res)) != 1 || res.RowStrings(0)[0] != "1" {
		t.Fatalf("exists: %v", resultGrid(res))
	}
	res = mustQuery(t, c, `SELECT ok FROM o WHERE NOT EXISTS (SELECT * FROM li WHERE li.ok = o.ok) ORDER BY ok`)
	if res.NumRows() != 1 || res.RowStrings(0)[0] != "3" {
		t.Fatalf("not exists: %v", resultGrid(res))
	}
	res = mustQuery(t, c, `SELECT ok FROM o WHERE ok IN (SELECT ok FROM li) ORDER BY ok`)
	if res.NumRows() != 2 {
		t.Fatalf("in subquery: %v", resultGrid(res))
	}
}

func TestCorrelatedScalarSubqueryQ2Pattern(t *testing.T) {
	db := memDB(t)
	c := db.Connect()
	mustExec(t, c, `CREATE TABLE ps (pk INTEGER, cost DECIMAL(10,2), reg VARCHAR)`)
	mustExec(t, c, `INSERT INTO ps VALUES
		(1, 10.00, 'EU'), (1, 5.00, 'EU'), (1, 7.00, 'US'),
		(2, 3.00, 'EU'), (2, 4.00, 'EU')`)
	// For each pk, the EU rows matching the per-pk EU minimum.
	res := mustQuery(t, c, `
		SELECT pk, cost FROM ps
		WHERE reg = 'EU' AND cost = (SELECT min(cost) FROM ps p2 WHERE p2.pk = ps.pk AND p2.reg = 'EU')
		ORDER BY pk`)
	grid := resultGrid(res)
	if len(grid) != 2 || grid[0] != "1|5.00" || grid[1] != "2|3.00" {
		t.Fatalf("q2 pattern: %v", grid)
	}
}

func TestUncorrelatedScalarSubqueryExec(t *testing.T) {
	db := memDB(t)
	c := db.Connect()
	mustExec(t, c, `CREATE TABLE t (a INTEGER)`)
	mustExec(t, c, `INSERT INTO t VALUES (1), (5), (9)`)
	res := mustQuery(t, c, `SELECT a FROM t WHERE a > (SELECT avg(a) FROM t) ORDER BY a`)
	if res.NumRows() != 1 || res.RowStrings(0)[0] != "9" {
		t.Fatalf("scalar subquery: %v", resultGrid(res))
	}
}

func TestDerivedTableAndCase(t *testing.T) {
	db := memDB(t)
	c := db.Connect()
	mustExec(t, c, `CREATE TABLE n (nm VARCHAR, vol DECIMAL(10,2))`)
	mustExec(t, c, `INSERT INTO n VALUES ('BRAZIL', 10.00), ('PERU', 20.00), ('BRAZIL', 5.00)`)
	res := mustQuery(t, c, `
		SELECT sum(CASE WHEN nm = 'BRAZIL' THEN vol ELSE 0 END) / sum(vol) AS share
		FROM (SELECT nm, vol FROM n) AS x`)
	share := res.Column(0).AsFloats()[0]
	if math.Abs(share-15.0/35.0) > 1e-9 {
		t.Fatalf("share = %v", share)
	}
}

func TestLikeAndStringOps(t *testing.T) {
	db := memDB(t)
	c := db.Connect()
	mustExec(t, c, `CREATE TABLE p (name VARCHAR)`)
	mustExec(t, c, `INSERT INTO p VALUES ('forest green'), ('dark red'), ('light green metal'), (NULL)`)
	res := mustQuery(t, c, `SELECT count(*) FROM p WHERE name LIKE '%green%'`)
	if res.RowStrings(0)[0] != "2" {
		t.Fatalf("like: %v", resultGrid(res))
	}
	res = mustQuery(t, c, `SELECT count(*) FROM p WHERE name NOT LIKE '%green%'`)
	if res.RowStrings(0)[0] != "1" { // NULL excluded
		t.Fatalf("not like: %v", resultGrid(res))
	}
	res = mustQuery(t, c, `SELECT count(*) FROM p WHERE name LIKE 'dark%'`)
	if res.RowStrings(0)[0] != "1" {
		t.Fatalf("prefix like: %v", resultGrid(res))
	}
	res = mustQuery(t, c, `SELECT substring(name from 1 for 4) FROM p WHERE name LIKE 'dark%'`)
	if res.RowStrings(0)[0] != "dark" {
		t.Fatalf("substring: %v", resultGrid(res))
	}
}

func TestExtractAndDateArith(t *testing.T) {
	db := memDB(t)
	c := db.Connect()
	mustExec(t, c, `CREATE TABLE d (dt DATE)`)
	mustExec(t, c, `INSERT INTO d VALUES (DATE '1995-03-15'), (DATE '1996-07-01')`)
	res := mustQuery(t, c, `SELECT extract(year from dt), extract(month from dt) FROM d ORDER BY dt`)
	if resultGrid(res)[0] != "1995|3" {
		t.Fatalf("extract: %v", resultGrid(res))
	}
	res = mustQuery(t, c, `SELECT count(*) FROM d WHERE dt < DATE '1996-01-01' + INTERVAL '6' MONTH`)
	if res.RowStrings(0)[0] != "1" {
		t.Fatalf("interval: %v", resultGrid(res))
	}
}

func TestOrderByLimitDistinct(t *testing.T) {
	db := memDB(t)
	c := db.Connect()
	mustExec(t, c, `CREATE TABLE t (a INTEGER, b VARCHAR)`)
	mustExec(t, c, `INSERT INTO t VALUES (3,'c'), (1,'a'), (2,'b'), (1,'a')`)
	res := mustQuery(t, c, `SELECT a FROM t ORDER BY a DESC LIMIT 2`)
	grid := resultGrid(res)
	if grid[0] != "3" || grid[1] != "2" {
		t.Fatalf("order/limit: %v", grid)
	}
	res = mustQuery(t, c, `SELECT DISTINCT a, b FROM t ORDER BY a`)
	if res.NumRows() != 3 {
		t.Fatalf("distinct: %v", resultGrid(res))
	}
	res = mustQuery(t, c, `SELECT a FROM t ORDER BY a LIMIT 2 OFFSET 1`)
	if res.NumRows() != 2 || res.RowStrings(0)[0] != "1" {
		t.Fatalf("offset: %v", resultGrid(res))
	}
}

func TestDeleteUpdate(t *testing.T) {
	db := memDB(t)
	c := db.Connect()
	mustExec(t, c, `CREATE TABLE t (a INTEGER, b VARCHAR)`)
	mustExec(t, c, `INSERT INTO t VALUES (1,'x'), (2,'y'), (3,'z')`)
	if n := mustExec(t, c, `DELETE FROM t WHERE a = 2`); n != 1 {
		t.Fatalf("delete n=%d", n)
	}
	res := mustQuery(t, c, `SELECT a FROM t ORDER BY a`)
	if res.NumRows() != 2 {
		t.Fatalf("after delete: %v", resultGrid(res))
	}
	if n := mustExec(t, c, `UPDATE t SET a = a + 10, b = 'w' WHERE a = 3`); n != 1 {
		t.Fatalf("update n=%d", n)
	}
	res = mustQuery(t, c, `SELECT a, b FROM t ORDER BY a`)
	grid := resultGrid(res)
	if grid[0] != "1|x" || grid[1] != "13|w" {
		t.Fatalf("after update: %v", grid)
	}
}

func TestTransactionsAndConflicts(t *testing.T) {
	db := memDB(t)
	c1 := db.Connect()
	c2 := db.Connect()
	mustExec(t, c1, `CREATE TABLE t (a INTEGER)`)
	mustExec(t, c1, `BEGIN; INSERT INTO t VALUES (1)`)
	// c2 doesn't see uncommitted data.
	if res := mustQuery(t, c2, `SELECT count(*) FROM t`); res.RowStrings(0)[0] != "0" {
		t.Fatal("dirty read")
	}
	// c1 sees its own writes.
	if res := mustQuery(t, c1, `SELECT count(*) FROM t`); res.RowStrings(0)[0] != "1" {
		t.Fatal("read own writes")
	}
	mustExec(t, c1, `COMMIT`)
	if res := mustQuery(t, c2, `SELECT count(*) FROM t`); res.RowStrings(0)[0] != "1" {
		t.Fatal("commit not visible")
	}
	// Concurrent INSERTs are disjoint row regions: both commit (the delta
	// store validates at region level, not table level).
	mustExec(t, c1, `BEGIN; INSERT INTO t VALUES (2)`)
	mustExec(t, c2, `BEGIN; INSERT INTO t VALUES (3)`)
	mustExec(t, c1, `COMMIT`)
	mustExec(t, c2, `COMMIT`)
	if res := mustQuery(t, c1, `SELECT count(*) FROM t`); res.RowStrings(0)[0] != "3" {
		t.Fatal("both concurrent inserts should commit")
	}
	// Same-row write-write conflict still aborts: UPDATE is delete+append,
	// so two updates of one row lose nothing silently.
	mustExec(t, c1, `BEGIN; UPDATE t SET a = 21 WHERE a = 2`)
	mustExec(t, c2, `BEGIN; UPDATE t SET a = 22 WHERE a = 2`)
	mustExec(t, c1, `COMMIT`)
	if _, err := c2.Exec(`COMMIT`); !errors.Is(err, txn.ErrWriteConflict) {
		t.Fatalf("want conflict, got %v", err)
	}
	if res := mustQuery(t, c1, `SELECT count(*) FROM t WHERE a = 21`); res.RowStrings(0)[0] != "1" {
		t.Fatal("first updater's write must survive")
	}
	// Rollback discards.
	mustExec(t, c1, `BEGIN; INSERT INTO t VALUES (4); ROLLBACK`)
	if res := mustQuery(t, c1, `SELECT count(*) FROM t`); res.RowStrings(0)[0] != "3" {
		t.Fatalf("rollback: %v", resultGrid(mustQuery(t, c1, `SELECT * FROM t`)))
	}
}

func TestPersistenceEndToEnd(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "db")
	db, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	c := db.Connect()
	mustExec(t, c, `CREATE TABLE t (a INTEGER, b VARCHAR)`)
	mustExec(t, c, `INSERT INTO t VALUES (1,'x'), (2,'y')`)
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	db2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	res := mustQuery(t, db2.Connect(), `SELECT a, b FROM t ORDER BY a`)
	grid := resultGrid(res)
	if len(grid) != 2 || grid[1] != "2|y" {
		t.Fatalf("persisted: %v", grid)
	}
}

func TestCrashRecoveryViaWAL(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "db")
	db, _ := Open(dir)
	c := db.Connect()
	mustExec(t, c, `CREATE TABLE t (a INTEGER)`)
	mustExec(t, c, `INSERT INTO t VALUES (42)`)
	// Simulate crash: close WAL/file handles without checkpoint.
	db.mu.Lock()
	db.closed = true
	db.log.Close()
	db.store.Close()
	db.mu.Unlock()

	db2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	res := mustQuery(t, db2.Connect(), `SELECT a FROM t`)
	if res.NumRows() != 1 || res.RowStrings(0)[0] != "42" {
		t.Fatalf("recovered: %v", resultGrid(res))
	}
}

func TestZeroCopyResult(t *testing.T) {
	db := memDB(t)
	c := db.Connect()
	mustExec(t, c, `CREATE TABLE t (a INTEGER, f DOUBLE)`)
	c.Append("t", []int32{1, 2, 3}, []float64{1.5, 2.5, 3.5})
	res := mustQuery(t, c, `SELECT a, f FROM t`)
	ints, err := res.Column(0).Ints32()
	if err != nil || len(ints) != 3 || ints[2] != 3 {
		t.Fatalf("ints32: %v %v", ints, err)
	}
	floats, err := res.Column(1).Floats64()
	if err != nil || floats[0] != 1.5 {
		t.Fatalf("floats: %v %v", floats, err)
	}
	// Wrong-type access errors and points to converters.
	if _, err := res.Column(0).Floats64(); err == nil {
		t.Fatal("type mismatch should error")
	}
	// Lazy conversion works for any numeric column.
	if fs := res.Column(0).AsFloats(); fs[1] != 2 {
		t.Fatalf("as floats: %v", fs)
	}
	// Materialize yields an independent copy.
	m := res.Column(0).Materialize()
	mi, _ := m.Ints32()
	mi[0] = 99
	if ints[0] == 99 {
		t.Fatal("materialize should copy")
	}
}

func TestAppendBulk(t *testing.T) {
	db := memDB(t)
	c := db.Connect()
	mustExec(t, c, `CREATE TABLE t (a INTEGER, s VARCHAR, d DATE, dec DECIMAL(10,2))`)
	err := c.Append("t",
		[]int32{1, 2},
		[]string{"x", "y"},
		[]string{"1995-01-01", "1996-02-02"},
		[]float64{1.25, 2.50},
	)
	if err != nil {
		t.Fatal(err)
	}
	res := mustQuery(t, c, `SELECT a, s, d, dec FROM t ORDER BY a`)
	grid := resultGrid(res)
	if grid[0] != "1|x|1995-01-01|1.25" {
		t.Fatalf("append: %v", grid)
	}
	// Errors: arity, ragged, bad type.
	if err := c.Append("t", []int32{1}); err == nil {
		t.Fatal("arity")
	}
	if err := c.Append("t", []int32{1}, []string{"a", "b"}, []string{"1995-01-01"}, []float64{1}); err == nil {
		t.Fatal("ragged")
	}
	if err := c.Append("missing", []int32{1}); err == nil {
		t.Fatal("missing table")
	}
}

func TestQueryParams(t *testing.T) {
	db := memDB(t)
	c := db.Connect()
	mustExec(t, c, `CREATE TABLE t (a INTEGER, b VARCHAR)`)
	mustExec(t, c, `INSERT INTO t VALUES (1,'x'), (2,'y')`)
	res := mustQuery(t, c, `SELECT b FROM t WHERE a = ?`, int64(2))
	if res.RowStrings(0)[0] != "y" {
		t.Fatalf("param: %v", resultGrid(res))
	}
}

func TestMultipleDatabasesOneProcess(t *testing.T) {
	// The paper lists this as impossible for MonetDBLite (global state);
	// monetlite supports it — its "future directions" fixed.
	db1 := memDB(t)
	db2 := memDB(t)
	c1, c2 := db1.Connect(), db2.Connect()
	mustExec(t, c1, `CREATE TABLE t (a INTEGER)`)
	mustExec(t, c2, `CREATE TABLE t (a VARCHAR)`) // same name, different schema
	mustExec(t, c1, `INSERT INTO t VALUES (1)`)
	mustExec(t, c2, `INSERT INTO t VALUES ('x')`)
	if mustQuery(t, c1, `SELECT a FROM t`).RowStrings(0)[0] != "1" {
		t.Fatal("db1")
	}
	if mustQuery(t, c2, `SELECT a FROM t`).RowStrings(0)[0] != "x" {
		t.Fatal("db2")
	}
}

func TestInMemoryDiscardsOnClose(t *testing.T) {
	db, _ := OpenInMemory()
	c := db.Connect()
	mustExec(t, c, `CREATE TABLE t (a INTEGER)`)
	if !db.InMemory() {
		t.Fatal("should be in-memory")
	}
	db.Close()
	if _, err := c.Query(`SELECT * FROM t`); !errors.Is(err, ErrClosed) {
		t.Fatal("closed database should reject queries")
	}
}

func TestDDLErrors(t *testing.T) {
	db := memDB(t)
	c := db.Connect()
	mustExec(t, c, `CREATE TABLE t (a INTEGER)`)
	if _, err := c.Exec(`CREATE TABLE t (a INTEGER)`); err == nil {
		t.Fatal("duplicate table")
	}
	if _, err := c.Exec(`DROP TABLE missing`); err == nil {
		t.Fatal("drop missing")
	}
	mustExec(t, c, `DROP TABLE IF EXISTS missing`) // no error
	if _, err := c.Exec(`SELECT nope FROM t`); err == nil {
		t.Fatal("unknown column")
	}
	if _, err := c.Exec(`CREATE TABLE u (a WIBBLE)`); err == nil {
		t.Fatal("unknown type")
	}
}

func TestOrderIndexSQL(t *testing.T) {
	db := memDB(t)
	c := db.Connect()
	mustExec(t, c, `CREATE TABLE t (a INTEGER)`)
	mustExec(t, c, `INSERT INTO t VALUES (5), (1), (9), (3)`)
	mustExec(t, c, `CREATE ORDER INDEX oi ON t (a)`)
	res := mustQuery(t, c, `SELECT a FROM t WHERE a BETWEEN 2 AND 6 ORDER BY a`)
	grid := resultGrid(res)
	if len(grid) != 2 || grid[0] != "3" || grid[1] != "5" {
		t.Fatalf("order index query: %v", grid)
	}
}

func TestMALTrace(t *testing.T) {
	db := memDB(t)
	c := db.Connect()
	c.TraceMAL = true
	mustExec(t, c, `CREATE TABLE t (a INTEGER)`)
	mustExec(t, c, `INSERT INTO t VALUES (1), (2), (3)`)
	mustQuery(t, c, `SELECT sum(a) FROM t WHERE a > 1`)
	trace := c.LastTrace.String()
	if !strings.Contains(trace, "sql.bind") || !strings.Contains(trace, "aggr.SUM") {
		t.Fatalf("trace:\n%s", trace)
	}
}

// CSE: the repeated (1 - disc) subexpression should be evaluated once.
func TestCommonSubexpressionElimination(t *testing.T) {
	db := memDB(t)
	c := db.Connect()
	c.TraceMAL = true
	mustExec(t, c, `CREATE TABLE t (p DECIMAL(10,2), disc DECIMAL(10,2), tax DECIMAL(10,2))`)
	mustExec(t, c, `INSERT INTO t VALUES (100.00, 0.10, 0.05)`)
	mustQuery(t, c, `SELECT sum(p * (1 - disc)), sum(p * (1 - disc) * (1 + tax)) FROM t`)
	if c.LastTrace.Count("cse.reuse") == 0 {
		t.Fatalf("expected CSE reuse in trace:\n%s", c.LastTrace)
	}
}
