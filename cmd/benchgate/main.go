// Command benchgate turns `go test -bench` output into a compact JSON
// snapshot and gates a current snapshot against a committed baseline — the
// CI bench-regression harness (see the bench-baseline job in
// .github/workflows/ci.yml and the README's "Benchmark baseline" section).
//
// Emit mode (reads bench output from stdin):
//
//	go test -run '^$' -bench X -benchmem -benchtime=3x -count=3 | benchgate -emit BENCH_PR4.json
//
// With -count > 1 the minimum ns/op (and allocs/op) per benchmark is kept:
// the minimum is the least noisy summary of a wall-clock measurement — every
// source of interference only ever makes a run slower.
//
// Compare mode:
//
//	benchgate -baseline BENCH_BASELINE.json -current BENCH_PR4.json -tolerance 0.30
//
// The gate fails (exit 1) when a benchmark's ns/op or allocs/op exceeds the
// baseline by more than the tolerance, or when a baselined benchmark is
// missing from the current snapshot. Improvements beyond the tolerance pass
// with a notice to refresh the committed baseline, so the trajectory stays
// honest in both directions.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"sort"
	"strconv"
)

// Entry is one benchmark measurement in a snapshot file. BytesPerRow is
// optional: benchmarks that measure storage compression report it via
// b.ReportMetric(…, "bytes/row") and the gate then guards the compression
// ratio the same way it guards latency.
type Entry struct {
	Op          string  `json:"op"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerRow float64 `json:"bytes_per_row,omitempty"`
	P99Ns       float64 `json:"p99_ns,omitempty"`
}

// benchLine matches one `go test -bench` result line, e.g.
// "BenchmarkScanFilterProject/CandidateList-4  5  3051704 ns/op  687 MB/s  4411537 B/op  126 allocs/op".
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+\d+\s+([0-9.]+) ns/op(?:.*?\s([0-9]+) allocs/op)?`)

// bytesRow matches the custom compression metric, e.g. "49.70 bytes/row".
var bytesRow = regexp.MustCompile(`\s([0-9.]+) bytes/row`)

// p99Ns matches the custom tail-latency metric reported by
// BenchmarkMixedWorkload, e.g. "1489645 p99-ns" — the gate guards reader
// tail latency under concurrent writers the same way it guards ns/op.
var p99Ns = regexp.MustCompile(`\s([0-9.]+) p99-ns`)

func parse(r *os.File) ([]Entry, error) {
	best := map[string]*Entry{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(sc.Text())
		if m == nil {
			continue
		}
		ns, err := strconv.ParseFloat(m[2], 64)
		if err != nil {
			return nil, fmt.Errorf("bad ns/op in %q: %v", sc.Text(), err)
		}
		var allocs int64
		if m[3] != "" {
			allocs, _ = strconv.ParseInt(m[3], 10, 64)
		}
		var bpr float64
		if bm := bytesRow.FindStringSubmatch(sc.Text()); bm != nil {
			bpr, _ = strconv.ParseFloat(bm[1], 64)
		}
		var p99 float64
		if pm := p99Ns.FindStringSubmatch(sc.Text()); pm != nil {
			p99, _ = strconv.ParseFloat(pm[1], 64)
		}
		e, ok := best[m[1]]
		if !ok {
			best[m[1]] = &Entry{Op: m[1], NsPerOp: ns, AllocsPerOp: allocs, BytesPerRow: bpr, P99Ns: p99}
			continue
		}
		e.NsPerOp = min(e.NsPerOp, ns)
		e.AllocsPerOp = min(e.AllocsPerOp, allocs)
		if bpr > 0 && (e.BytesPerRow == 0 || bpr < e.BytesPerRow) {
			e.BytesPerRow = bpr
		}
		if p99 > 0 && (e.P99Ns == 0 || p99 < e.P99Ns) {
			e.P99Ns = p99
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	out := make([]Entry, 0, len(best))
	for _, e := range best {
		out = append(out, *e)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Op < out[j].Op })
	if len(out) == 0 {
		return nil, fmt.Errorf("no benchmark lines found on stdin")
	}
	return out, nil
}

func load(path string) (map[string]Entry, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var entries []Entry
	if err := json.Unmarshal(data, &entries); err != nil {
		return nil, fmt.Errorf("%s: %v", path, err)
	}
	m := make(map[string]Entry, len(entries))
	for _, e := range entries {
		m[e.Op] = e
	}
	return m, nil
}

func compare(baselinePath, currentPath string, tol float64) int {
	base, err := load(baselinePath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchgate:", err)
		return 2
	}
	cur, err := load(currentPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchgate:", err)
		return 2
	}
	ops := make([]string, 0, len(base))
	for op := range base {
		ops = append(ops, op)
	}
	sort.Strings(ops)
	failed := false
	check := func(op, metric string, baseV, curV float64) {
		if baseV <= 0 {
			return
		}
		ratio := curV / baseV
		switch {
		case ratio > 1+tol:
			failed = true
			fmt.Printf("FAIL %s: %s %.0f vs baseline %.0f (%+.1f%%, tolerance ±%.0f%%)\n",
				op, metric, curV, baseV, (ratio-1)*100, tol*100)
		case ratio < 1-tol:
			fmt.Printf("note %s: %s %.0f vs baseline %.0f (%+.1f%%) — faster than the baseline "+
				"tolerance; consider refreshing BENCH_BASELINE.json\n",
				op, metric, curV, baseV, (ratio-1)*100)
		default:
			fmt.Printf("ok   %s: %s %.0f vs baseline %.0f (%+.1f%%)\n",
				op, metric, curV, baseV, (ratio-1)*100)
		}
	}
	for _, op := range ops {
		b := base[op]
		c, ok := cur[op]
		if !ok {
			failed = true
			fmt.Printf("FAIL %s: baselined benchmark missing from current run\n", op)
			continue
		}
		check(op, "ns/op", b.NsPerOp, c.NsPerOp)
		check(op, "allocs/op", float64(b.AllocsPerOp), float64(c.AllocsPerOp))
		check(op, "bytes/row", b.BytesPerRow, c.BytesPerRow)
		check(op, "p99-ns", b.P99Ns, c.P99Ns)
	}
	for op := range cur {
		if _, ok := base[op]; !ok {
			fmt.Printf("note %s: not in baseline (new benchmark) — add it when refreshing\n", op)
		}
	}
	if failed {
		return 1
	}
	return 0
}

func main() {
	emit := flag.String("emit", "", "parse bench output from stdin and write a JSON snapshot to this path")
	baseline := flag.String("baseline", "", "baseline snapshot to compare against")
	current := flag.String("current", "", "current snapshot to gate")
	tol := flag.Float64("tolerance", 0.30, "relative tolerance before the gate fails")
	flag.Parse()

	switch {
	case *emit != "":
		entries, err := parse(os.Stdin)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchgate:", err)
			os.Exit(2)
		}
		data, _ := json.MarshalIndent(entries, "", "  ")
		if err := os.WriteFile(*emit, append(data, '\n'), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "benchgate:", err)
			os.Exit(2)
		}
		fmt.Printf("benchgate: wrote %d benchmarks to %s\n", len(entries), *emit)
	case *baseline != "" && *current != "":
		os.Exit(compare(*baseline, *current, *tol))
	default:
		fmt.Fprintln(os.Stderr, "benchgate: use -emit OUT.json (stdin = bench output), or -baseline A.json -current B.json")
		os.Exit(2)
	}
}
