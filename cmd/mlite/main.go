// Command mlite is an interactive SQL shell over an embedded monetlite
// database — no server to start, just point it at a directory (or nothing
// for an in-memory session).
//
// Usage:
//
//	mlite [-db DIR] [-c "SQL"] [-explain]
//
// With -c the statement list runs non-interactively; otherwise statements
// are read from stdin (terminated by ';').
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strings"

	"monetlite"
)

func main() {
	dir := flag.String("db", "", "database directory (empty = in-memory)")
	command := flag.String("c", "", "run these semicolon-separated statements and exit")
	explain := flag.Bool("explain", false, "print the MAL trace after each query")
	flag.Parse()

	var db *monetlite.Database
	var err error
	if *dir == "" {
		db, err = monetlite.OpenInMemory()
	} else {
		db, err = monetlite.Open(*dir)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "mlite:", err)
		os.Exit(1)
	}
	defer db.Close()
	conn := db.Connect()
	conn.TraceMAL = *explain

	if *command != "" {
		if err := runStatements(conn, *command, *explain); err != nil {
			fmt.Fprintln(os.Stderr, "mlite:", err)
			os.Exit(1)
		}
		return
	}

	fmt.Println("monetlite shell — end statements with ';', Ctrl-D to exit")
	scanner := bufio.NewScanner(os.Stdin)
	scanner.Buffer(make([]byte, 1<<20), 1<<20)
	var buf strings.Builder
	prompt(buf.Len() > 0)
	for scanner.Scan() {
		line := scanner.Text()
		buf.WriteString(line)
		buf.WriteByte('\n')
		if strings.Contains(line, ";") {
			if err := runStatements(conn, buf.String(), *explain); err != nil {
				fmt.Fprintln(os.Stderr, "error:", err)
			}
			buf.Reset()
		}
		prompt(buf.Len() > 0)
	}
}

func prompt(continuation bool) {
	if continuation {
		fmt.Print("   ...> ")
	} else {
		fmt.Print("mlite> ")
	}
}

func runStatements(conn *monetlite.Conn, sql string, explain bool) error {
	for _, stmt := range splitStatements(sql) {
		up := strings.ToUpper(strings.TrimSpace(stmt))
		if strings.HasPrefix(up, "SELECT") {
			res, err := conn.Query(stmt)
			if err != nil {
				return err
			}
			printResult(res)
			if explain && conn.LastTrace != nil {
				fmt.Println("-- MAL trace --")
				fmt.Print(conn.LastTrace.String())
			}
			continue
		}
		n, err := conn.Exec(stmt)
		if err != nil {
			return err
		}
		fmt.Printf("OK, %d rows affected\n", n)
	}
	return nil
}

// splitStatements splits on top-level semicolons (quotes respected).
func splitStatements(sql string) []string {
	var out []string
	depth := false
	start := 0
	for i := 0; i < len(sql); i++ {
		switch sql[i] {
		case '\'':
			depth = !depth
		case ';':
			if !depth {
				if s := strings.TrimSpace(sql[start:i]); s != "" {
					out = append(out, s)
				}
				start = i + 1
			}
		}
	}
	if s := strings.TrimSpace(sql[start:]); s != "" {
		out = append(out, s)
	}
	return out
}

func printResult(res *monetlite.Result) {
	widths := make([]int, res.NumCols())
	names := res.Names()
	for i, n := range names {
		widths[i] = len(n)
	}
	rows := make([][]string, res.NumRows())
	for r := 0; r < res.NumRows(); r++ {
		rows[r] = res.RowStrings(r)
		for i, v := range rows[r] {
			if len(v) > widths[i] {
				widths[i] = len(v)
			}
		}
	}
	line := func(vals []string) {
		for i, v := range vals {
			fmt.Printf("| %-*s ", widths[i], v)
		}
		fmt.Println("|")
	}
	line(names)
	sep := make([]string, len(names))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range rows {
		line(row)
	}
	fmt.Printf("(%d rows)\n", res.NumRows())
}
