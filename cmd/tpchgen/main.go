// Command tpchgen generates the TPC-H dataset, writing either CSV files or a
// ready-to-query monetlite database directory.
//
// Usage:
//
//	tpchgen -sf 0.1 -out /tmp/tpch-csv            # CSV files
//	tpchgen -sf 0.1 -db /tmp/tpch-db              # monetlite database
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strconv"

	"monetlite"
	"monetlite/internal/mtypes"
	"monetlite/internal/tpch"
)

func main() {
	sf := flag.Float64("sf", 0.01, "scale factor (1.0 = ~6M lineitem rows)")
	out := flag.String("out", "", "write CSV files to this directory")
	dbdir := flag.String("db", "", "load into a monetlite database directory")
	seed := flag.Int64("seed", 42, "generator seed")
	flag.Parse()

	if *out == "" && *dbdir == "" {
		fmt.Fprintln(os.Stderr, "tpchgen: need -out or -db")
		os.Exit(1)
	}
	fmt.Printf("generating TPC-H SF %g (seed %d)...\n", *sf, *seed)
	d := tpch.Generate(*sf, *seed)
	fmt.Printf("generated %d total rows\n", d.TotalRows())

	if *out != "" {
		if err := writeCSVs(d, *out); err != nil {
			fmt.Fprintln(os.Stderr, "tpchgen:", err)
			os.Exit(1)
		}
	}
	if *dbdir != "" {
		db, err := monetlite.Open(*dbdir)
		if err != nil {
			fmt.Fprintln(os.Stderr, "tpchgen:", err)
			os.Exit(1)
		}
		if err := tpch.LoadInto(db, d); err != nil {
			fmt.Fprintln(os.Stderr, "tpchgen:", err)
			os.Exit(1)
		}
		if err := db.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "tpchgen:", err)
			os.Exit(1)
		}
		fmt.Printf("database written to %s\n", *dbdir)
	}
}

func writeCSVs(d *tpch.Data, dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	for _, t := range d.Tables() {
		path := filepath.Join(dir, t.Name+".csv")
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		w := bufio.NewWriterSize(f, 1<<20)
		for r := 0; r < t.Rows; r++ {
			for ci, col := range t.Cols {
				if ci > 0 {
					w.WriteByte('|')
				}
				switch x := col.(type) {
				case []int32:
					// Date columns render as dates when plausible epoch-days;
					// TPC-H CSVs traditionally use the dbgen '|' format.
					w.WriteString(strconv.FormatInt(int64(x[r]), 10))
				case []int64:
					w.WriteString(strconv.FormatInt(x[r], 10))
				case []float64:
					w.WriteString(strconv.FormatFloat(x[r], 'f', 2, 64))
				case []string:
					w.WriteString(x[r])
				}
			}
			w.WriteByte('\n')
		}
		if err := w.Flush(); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("  %s: %d rows\n", path, t.Rows)
	}
	// A small manifest helps consumers interpret date columns.
	manifest := filepath.Join(dir, "MANIFEST.txt")
	return os.WriteFile(manifest, []byte(fmt.Sprintf(
		"TPC-H SF %g, seed-deterministic. Date columns are epoch days (1970-01-01 = 0; e.g. %d = %s).\n",
		d.SF, mtypes.DateFromYMD(1995, 6, 17), "1995-06-17")), 0o644)
}
