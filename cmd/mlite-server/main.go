// Command mlite-server hosts a monetlite engine behind a TCP socket — the
// client-server deployment the paper's evaluation uses as its baseline
// architecture (Figure 1a). The -engine flag selects the columnar engine
// (a MonetDB-like server) or the volcano row store (a PostgreSQL/MariaDB-like
// server).
//
// Usage:
//
//	mlite-server [-addr 127.0.0.1:7687] [-db DIR] [-engine columnar|rowstore]
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"

	"monetlite"
	"monetlite/internal/rowstore"
	"monetlite/internal/server"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:7687", "listen address")
	dir := flag.String("db", "", "database directory (empty = in-memory)")
	engine := flag.String("engine", "columnar", "engine: columnar or rowstore")
	flag.Parse()

	var backend server.Backend
	var shutdown func()
	switch *engine {
	case "columnar":
		var db *monetlite.Database
		var err error
		if *dir == "" {
			db, err = monetlite.OpenInMemory()
		} else {
			db, err = monetlite.Open(*dir)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "mlite-server:", err)
			os.Exit(1)
		}
		backend = server.NewColumnarBackend(db)
		shutdown = func() { db.Close() }
	case "rowstore":
		path := ""
		if *dir != "" {
			path = *dir + "/rowstore.db"
		}
		db, err := rowstore.Open(path)
		if err != nil {
			fmt.Fprintln(os.Stderr, "mlite-server:", err)
			os.Exit(1)
		}
		backend = server.NewRowstoreBackend(db)
		shutdown = func() { db.Close() }
	default:
		fmt.Fprintln(os.Stderr, "mlite-server: unknown engine", *engine)
		os.Exit(1)
	}

	srv, err := server.Serve(*addr, backend)
	if err != nil {
		shutdown()
		fmt.Fprintln(os.Stderr, "mlite-server:", err)
		os.Exit(1)
	}
	fmt.Printf("mlite-server (%s engine) listening on %s\n", *engine, srv.Addr())

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt)
	<-sig
	fmt.Println("shutting down")
	srv.Close()
	shutdown()
}
