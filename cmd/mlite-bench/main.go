// Command mlite-bench runs the paper-reproduction benchmark suite and prints
// every figure and table of the MonetDBLite evaluation (see DESIGN.md for
// the experiment index and EXPERIMENTS.md for recorded results).
//
// Usage:
//
//	mlite-bench                     # everything at the default scale
//	mlite-bench -sf 0.1 -runs 5     # bigger scale, more hot runs
//	mlite-bench -only fig5,table1   # a subset
//	mlite-bench -big                # adds the SF10-block (memory-budget) table
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"monetlite/internal/bench"
)

func main() {
	sf := flag.Float64("sf", 0.05, "TPC-H scale factor")
	acs := flag.Int("acs", 50000, "ACS person count")
	runs := flag.Int("runs", 3, "hot runs per measurement (median reported)")
	timeout := flag.Duration("timeout", 5*time.Minute, "per-query timeout (paper: 5m)")
	only := flag.String("only", "", "comma-separated subset: fig2,fig5,fig6,fig7,fig8,table1,ablations")
	big := flag.Bool("big", false, "also run the Table 1 SF10 block (frame memory budget)")
	flag.Parse()

	cfg := bench.Default()
	cfg.SF = *sf
	cfg.ACSPersons = *acs
	cfg.Runs = *runs
	cfg.Timeout = *timeout

	want := map[string]bool{}
	if *only != "" {
		for _, k := range strings.Split(*only, ",") {
			want[strings.TrimSpace(k)] = true
		}
	}
	run := func(key string) bool { return len(want) == 0 || want[key] }

	type job struct {
		key string
		fn  func() (*bench.Report, error)
	}
	jobs := []job{
		{"fig5", func() (*bench.Report, error) { return bench.Figure5(cfg) }},
		{"fig6", func() (*bench.Report, error) { return bench.Figure6(cfg) }},
		{"table1", func() (*bench.Report, error) { return bench.Table1(cfg) }},
		{"fig7", func() (*bench.Report, error) { return bench.Figure7(cfg) }},
		{"fig8", func() (*bench.Report, error) { return bench.Figure8(cfg) }},
		{"fig2", func() (*bench.Report, error) { return bench.Figure2(cfg, 1_000_000) }},
		{"ablations", nil},
	}
	for _, j := range jobs {
		if !run(j.key) {
			continue
		}
		if j.key == "ablations" {
			runAblations(cfg)
			continue
		}
		start := time.Now()
		rep, err := j.fn()
		if err != nil {
			fmt.Fprintf(os.Stderr, "mlite-bench %s: %v\n", j.key, err)
			os.Exit(1)
		}
		fmt.Println(rep)
		fmt.Printf("(%s finished in %s)\n\n", j.key, time.Since(start).Round(time.Millisecond))
	}
	if *big && run("table1") {
		cfgBig := cfg
		cfgBig.FrameBudget = int64(float64(40<<20) * cfg.SF / 0.01)
		rep, err := bench.Table1(cfgBig)
		if err != nil {
			fmt.Fprintln(os.Stderr, "mlite-bench table1-big:", err)
			os.Exit(1)
		}
		rep.Title += " [SF10 block: frame memory budget active]"
		fmt.Println(rep)
	}
}

func runAblations(cfg bench.Config) {
	type ab struct {
		name string
		fn   func() (*bench.Report, error)
	}
	for _, a := range []ab{
		{"result transfer", func() (*bench.Report, error) { return bench.AblationResultTransfer(cfg) }},
		{"string dedup", func() (*bench.Report, error) { return bench.AblationStringDedup(cfg) }},
		{"indexes", func() (*bench.Report, error) { return bench.AblationIndexes(cfg) }},
		{"append vs insert", func() (*bench.Report, error) { return bench.AblationAppendVsInsert(cfg) }},
	} {
		rep, err := a.fn()
		if err != nil {
			fmt.Fprintf(os.Stderr, "mlite-bench ablation %s: %v\n", a.name, err)
			os.Exit(1)
		}
		fmt.Println(rep)
	}
}
