package monetlite

import (
	"strings"
	"sync"

	"monetlite/internal/plan"
	"monetlite/internal/sqlparse"
)

// planCache is the per-database statement cache: normalized SQL text maps to
// a parsed AST (always) and, for cacheable statements, to a fully bound and
// optimized plan. It is the embedded analogue of a server's prepared-statement
// cache — the original MonetDB spends a large fraction of short-query latency
// in its SQL front end, and MonetDBLite inherits that parser; caching the
// bound plan removes parse+bind+optimize from the hot path entirely.
//
// Soundness:
//
//   - Parse entries are pure syntax, shared freely and never invalidated.
//     Binding reads the AST without mutating it, so one AST serves any number
//     of concurrent binds.
//   - Plan entries depend on catalog shape (table/column metadata), so each is
//     stamped with the store's DDL-only schema version; a lookup whose stamp
//     is stale counts as an invalidation and rebinds. Data commits do not
//     touch the schema version, so plans survive ordinary writes.
//   - Plan entries also depend on the column statistics the cost-based
//     optimizer read (join orders, build-side choices), so each carries the
//     store's stats version too. The stats version only moves on material
//     data change (first rows, growth past the epoch thresholds, deletes),
//     so steady-state workloads keep their plans while a bulk load or big
//     delete forces re-optimization against fresh statistics.
//   - Plans bind positional parameters as constants, so only param-free
//     statements get plan entries. Parameterized statements still skip the
//     parser via the parse cache.
//   - Executed plans are read-only to the engine (the differential suite runs
//     the same plan through serial and parallel engines), so one cached plan
//     can be executing on several connections at once.
type planCache struct {
	mu    sync.Mutex
	parse map[string]sqlparse.Statement
	plans map[string]cachedPlan

	hits          int64
	misses        int64
	invalidations int64
}

type cachedPlan struct {
	q      *plan.BoundQuery
	schema uint64 // storage.Store.SchemaVersion() at bind time
	stats  uint64 // storage.Store.StatsVersion() at bind time
}

// planCacheMax bounds each map. Statement texts in a workload are few; the cap
// only guards against unbounded growth from generated SQL.
const planCacheMax = 512

func newPlanCache() *planCache {
	return &planCache{
		parse: make(map[string]sqlparse.Statement),
		plans: make(map[string]cachedPlan),
	}
}

// normalizeSQL canonicalizes a statement text for cache keying: surrounding
// whitespace and a trailing semicolon never change meaning.
func normalizeSQL(sql string) string {
	s := strings.TrimSpace(sql)
	s = strings.TrimSuffix(s, ";")
	return strings.TrimSpace(s)
}

// getParse returns the cached AST for key, if any.
func (pc *planCache) getParse(key string) (sqlparse.Statement, bool) {
	pc.mu.Lock()
	defer pc.mu.Unlock()
	st, ok := pc.parse[key]
	return st, ok
}

func (pc *planCache) putParse(key string, st sqlparse.Statement) {
	pc.mu.Lock()
	defer pc.mu.Unlock()
	if len(pc.parse) >= planCacheMax {
		for k := range pc.parse {
			delete(pc.parse, k)
			break
		}
	}
	pc.parse[key] = st
}

// getPlan returns the cached bound plan for key if both its schema and its
// stats stamps still match, recording a hit. A stale entry is dropped and
// recorded as an invalidation; absence is a miss.
func (pc *planCache) getPlan(key string, schema, stats uint64) (*plan.BoundQuery, bool) {
	pc.mu.Lock()
	defer pc.mu.Unlock()
	cp, ok := pc.plans[key]
	if !ok {
		pc.misses++
		return nil, false
	}
	if cp.schema != schema || cp.stats != stats {
		delete(pc.plans, key)
		pc.invalidations++
		pc.misses++
		return nil, false
	}
	pc.hits++
	return cp.q, true
}

func (pc *planCache) putPlan(key string, q *plan.BoundQuery, schema, stats uint64) {
	pc.mu.Lock()
	defer pc.mu.Unlock()
	if len(pc.plans) >= planCacheMax {
		for k := range pc.plans {
			delete(pc.plans, k)
			break
		}
	}
	pc.plans[key] = cachedPlan{q: q, schema: schema, stats: stats}
}

// PlanCacheStats is a snapshot of the statement-cache counters.
type PlanCacheStats struct {
	ParseEntries  int   // cached ASTs
	PlanEntries   int   // cached bound plans
	Hits          int64 // plan lookups served from cache
	Misses        int64 // plan lookups that had to bind
	Invalidations int64 // plan entries dropped for a stale schema or stats version
}

// PlanCacheStats reports the database's statement-cache counters.
func (db *Database) PlanCacheStats() PlanCacheStats {
	pc := db.pc
	pc.mu.Lock()
	defer pc.mu.Unlock()
	return PlanCacheStats{
		ParseEntries:  len(pc.parse),
		PlanEntries:   len(pc.plans),
		Hits:          pc.hits,
		Misses:        pc.misses,
		Invalidations: pc.invalidations,
	}
}
