package monetlite

import (
	"strings"
	"testing"
)

// Date/interval arithmetic breadth: date columns shifted by integer days,
// INTERVAL literals on either side of +, MONTH/YEAR intervals over
// non-constant dates (the vectorized mtime.addmonths path), month-end
// clamping, NULL propagation, and intervals in WHERE and ORDER BY positions.
func TestDateIntervalArithmetic(t *testing.T) {
	db := memDB(t)
	c := db.Connect()
	mustExec(t, c, `CREATE TABLE cal (id INTEGER, dt DATE)`)
	mustExec(t, c, `INSERT INTO cal VALUES
		(1, DATE '1995-01-31'),
		(2, DATE '1996-02-29'),
		(3, DATE '1998-12-01'),
		(4, NULL)`)

	cases := []struct {
		name string
		q    string
		want []string
	}{
		{
			// date ± integer days works directly through the arithmetic kernels.
			"plus-int-days",
			`SELECT id, dt + 5 FROM cal ORDER BY id`,
			[]string{"1|1995-02-05", "2|1996-03-05", "3|1998-12-06", "4|NULL"},
		},
		{
			"minus-int-days",
			`SELECT id, dt - 31 FROM cal ORDER BY id`,
			[]string{"1|1994-12-31", "2|1996-01-29", "3|1998-10-31", "4|NULL"},
		},
		{
			"interval-day",
			`SELECT id, dt + INTERVAL '10' DAY, dt - INTERVAL '1' DAY FROM cal ORDER BY id`,
			[]string{"1|1995-02-10|1995-01-30", "2|1996-03-10|1996-02-28",
				"3|1998-12-11|1998-11-30", "4|NULL|NULL"},
		},
		{
			// Jan 31 + 1 month clamps to Feb 28; Feb 29 + 12 months clamps to
			// Feb 28 of the non-leap year.
			"interval-month-clamps",
			`SELECT id, dt + INTERVAL '1' MONTH FROM cal ORDER BY id`,
			[]string{"1|1995-02-28", "2|1996-03-29", "3|1999-01-01", "4|NULL"},
		},
		{
			"interval-year",
			`SELECT id, dt + INTERVAL '1' YEAR, dt - INTERVAL '2' YEAR FROM cal ORDER BY id`,
			[]string{"1|1996-01-31|1993-01-31", "2|1997-02-28|1994-02-28",
				"3|1999-12-01|1996-12-01", "4|NULL|NULL"},
		},
		{
			// Interval literal on the left of + binds the same way.
			"interval-on-left",
			`SELECT id, INTERVAL '2' MONTH + dt FROM cal ORDER BY id`,
			[]string{"1|1995-03-31", "2|1996-04-29", "3|1999-02-01", "4|NULL"},
		},
		{
			// Non-constant date expression under the interval: the addend is
			// itself computed per row first.
			"interval-over-expression",
			`SELECT id, (dt + 1) + INTERVAL '1' MONTH FROM cal ORDER BY id`,
			[]string{"1|1995-03-01", "2|1996-04-01", "3|1999-01-02", "4|NULL"},
		},
		{
			"interval-in-where",
			`SELECT id FROM cal WHERE dt + INTERVAL '3' MONTH < DATE '1996-06-01' ORDER BY id`,
			[]string{"1", "2"},
		},
		{
			"date-minus-date-days",
			`SELECT id, dt - DATE '1995-01-01' FROM cal WHERE dt IS NOT NULL ORDER BY id`,
			[]string{"1|30", "2|424", "3|1430"},
		},
		{
			"interval-in-order-by",
			`SELECT id FROM cal WHERE dt IS NOT NULL ORDER BY dt + INTERVAL '1' YEAR DESC`,
			[]string{"3", "2", "1"},
		},
	}
	for _, tc := range cases {
		res := mustQuery(t, c, tc.q)
		got := resultGrid(res)
		if len(got) != len(tc.want) {
			t.Fatalf("%s: got %d rows %v, want %v", tc.name, len(got), got, tc.want)
		}
		for i := range got {
			if got[i] != tc.want[i] {
				t.Fatalf("%s: row %d = %q, want %q\nall: %v", tc.name, i, got[i], tc.want[i], got)
			}
		}
	}
}

// MONTH/YEAR intervals over non-constant dates lower to the vectorized
// mtime.addmonths kernel; constant folding keeps DATE-literal arithmetic out
// of the per-row path entirely.
func TestDateIntervalTrace(t *testing.T) {
	db := memDB(t)
	c := db.Connect()
	mustExec(t, c, `CREATE TABLE cal (dt DATE)`)
	mustExec(t, c, `INSERT INTO cal VALUES (DATE '1995-01-31'), (DATE '1996-02-29')`)

	c.TraceMAL = true
	mustQuery(t, c, `SELECT dt + INTERVAL '1' MONTH FROM cal`)
	if out := c.LastTrace.String(); !strings.Contains(out, "mtime.addmonths") {
		t.Fatalf("column interval should use mtime.addmonths:\n%s", out)
	}

	res := mustQuery(t, c, `SELECT count(*) FROM cal WHERE dt < DATE '1995-06-01' + INTERVAL '1' MONTH`)
	if out := c.LastTrace.String(); strings.Contains(out, "mtime.addmonths") {
		t.Fatalf("constant DATE + INTERVAL should fold at bind time:\n%s", out)
	}
	if res.RowStrings(0)[0] != "1" {
		t.Fatalf("folded filter: %v", resultGrid(res))
	}
}

// Error shape: intervals only combine with DATE operands, and only units the
// engine understands.
func TestDateIntervalErrors(t *testing.T) {
	db := memDB(t)
	c := db.Connect()
	mustExec(t, c, `CREATE TABLE cal (n INTEGER, dt DATE)`)
	mustExec(t, c, `INSERT INTO cal VALUES (1, DATE '1995-01-01')`)

	if _, err := c.Query(`SELECT n + INTERVAL '1' MONTH FROM cal`); err == nil {
		t.Fatal("integer + INTERVAL MONTH should fail to bind")
	} else if !strings.Contains(err.Error(), "DATE operand") {
		t.Fatalf("unexpected error: %v", err)
	}
	if _, err := c.Query(`SELECT dt + INTERVAL '1' HOUR FROM cal`); err == nil {
		t.Fatal("INTERVAL HOUR should be rejected")
	}
}
