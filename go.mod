module monetlite

go 1.24
