// Package monetlite is an embedded analytical (OLAP) column-store database
// for Go — a from-scratch reproduction of MonetDBLite (Raasveldt &
// Mühleisen, CIKM 2018).
//
// The database runs inside the host process: there is no server to install,
// configure or manage. Open a database directory (or an in-memory instance),
// create connections, and issue SQL:
//
//	db, _ := monetlite.Open("/tmp/mydb")
//	defer db.Close()
//	conn := db.Connect()
//	conn.Exec(`CREATE TABLE t (a INTEGER, b VARCHAR)`)
//	conn.Exec(`INSERT INTO t VALUES (1, 'x'), (2, 'y')`)
//	res, _ := conn.Query(`SELECT a, b FROM t WHERE a > 1`)
//	ints, _ := res.Column(0).Ints32() // zero-copy for numeric columns
//
// Mirroring the paper's C API: Open/OpenInMemory are monetdb_startup,
// (*Database).Connect is monetdb_connect, (*Conn).Query is monetdb_query,
// (*Conn).Append is monetdb_append, and (*Result).Column is
// monetdb_result_fetch (with both the zero-copy low-level accessors and the
// converting high-level ones).
package monetlite

import (
	"errors"
	"fmt"
	"path/filepath"
	"sync"
	"time"

	"monetlite/internal/delta"
	"monetlite/internal/faultfs"
	"monetlite/internal/storage"
	"monetlite/internal/txn"
	"monetlite/internal/wal"
)

// Config tunes an embedded database instance.
type Config struct {
	// Parallel enables mitosis (parallel scan/map/partial-aggregate
	// pipelines). Default true.
	Parallel bool
	// MaxThreads caps worker goroutines (0 = GOMAXPROCS).
	MaxThreads int
	// NoIndexes disables automatic secondary index use (ablation studies).
	NoIndexes bool
	// ForceCopy disables zero-copy result transfer: result columns are
	// always private copies (ablation; default false = zero-copy).
	ForceCopy bool
	// EagerConvert materializes all converted forms of result columns at
	// query time instead of lazily on first access (ablation).
	EagerConvert bool
	// QueryTimeout aborts queries that run longer (0 = none).
	QueryTimeout time.Duration
	// WALCheckpointBytes auto-checkpoints when the write-ahead log grows past
	// this size, bounding recovery replay time (0 = only checkpoint on Close
	// or explicit Checkpoint calls).
	WALCheckpointBytes int64
	// WALFS overrides the filesystem the write-ahead log is opened on
	// (nil = the real disk). Fault-injection tests wire a faultfs.SimFS here
	// to prove I/O errors surface instead of being swallowed.
	WALFS faultfs.FS
	// DeltaMergeRows is the delta size (pending appended rows per table) at
	// which the background merger folds the delta into the indexed base
	// (0 = default, see delta.DefaultPolicy).
	DeltaMergeRows int
	// DeltaMergeRatio additionally triggers a merge once the delta exceeds
	// this fraction of the base (0 = default).
	DeltaMergeRatio float64
	// NoDeltaMerge disables the background merger entirely; deltas then fold
	// only on checkpoint or an explicit MergeDeltas call (ablation studies).
	NoDeltaMerge bool
}

// DefaultConfig returns the standard configuration.
func DefaultConfig() Config { return Config{Parallel: true} }

// Database is an embedded database instance. Unlike the original
// MonetDBLite — which could only run one database per process because of
// internal global state (paper §3.4) — monetlite keeps all state inside this
// struct, so any number of databases can coexist in one process.
type Database struct {
	cfg   Config
	store *storage.Store
	log   *wal.Log
	mgr   *txn.Manager
	rec   wal.RecoveryReport
	pc    *planCache

	mu     sync.Mutex
	closed bool
}

// ErrClosed is returned when using a closed database.
var ErrClosed = errors.New("monetlite: database is closed")

// Open opens (creating if necessary) a persistent database in dir. Existing
// data is recovered from the last checkpoint plus the write-ahead log.
func Open(dir string, cfg ...Config) (*Database, error) {
	c := DefaultConfig()
	if len(cfg) > 0 {
		c = cfg[0]
	}
	st, err := storage.Open(dir)
	if err != nil {
		return nil, fmt.Errorf("monetlite: %w", err)
	}
	// Open the log before replaying: Open repairs any torn tail (truncating
	// to the last committed frame) so replay and all later appends work on a
	// clean file, and reports what recovery found.
	walPath := filepath.Join(dir, "wal.log")
	walFS := c.WALFS
	if walFS == nil {
		walFS = faultfs.Disk
	}
	log, rec, err := wal.OpenFS(walFS, walPath)
	if err != nil {
		st.Close()
		return nil, fmt.Errorf("monetlite: %w", err)
	}
	if err := txn.ReplayLog(st, log); err != nil {
		log.Close()
		st.Close()
		return nil, fmt.Errorf("monetlite: recovering WAL: %w", err)
	}
	db := &Database{cfg: c, store: st, log: log, rec: *rec, pc: newPlanCache()}
	db.mgr = txn.NewManager(st, log)
	db.mgr.SetAutoCheckpoint(c.WALCheckpointBytes)
	db.startMerger()
	return db, nil
}

// startMerger applies the configured merge policy and, unless disabled,
// starts the background delta merger. Called only after WAL replay so the
// merger never observes a half-recovered store.
func (db *Database) startMerger() {
	p := delta.DefaultPolicy()
	if db.cfg.DeltaMergeRows > 0 {
		p.MinRows = db.cfg.DeltaMergeRows
	}
	if db.cfg.DeltaMergeRatio > 0 {
		p.Ratio = db.cfg.DeltaMergeRatio
	}
	db.mgr.SetMergePolicy(p)
	if !db.cfg.NoDeltaMerge {
		db.mgr.StartMerger()
	}
}

// Recovery reports what WAL recovery found when the database was opened:
// how many committed transactions were replayed and whether a torn or
// corrupt tail had to be truncated.
func (db *Database) Recovery() wal.RecoveryReport { return db.rec }

// OpenInMemory creates a transient database: nothing is written to disk and
// all data is discarded on Close (the paper's in-memory mode).
func OpenInMemory(cfg ...Config) (*Database, error) {
	c := DefaultConfig()
	if len(cfg) > 0 {
		c = cfg[0]
	}
	st := storage.NewMemory()
	db := &Database{cfg: c, store: st, pc: newPlanCache()}
	db.mgr = txn.NewManager(st, nil)
	db.startMerger()
	return db, nil
}

// Connect creates a new connection. Connections are the paper's "dummy
// clients": they hold a query context, provide transaction isolation from
// one another, and can be used concurrently for inter-query parallelism.
func (db *Database) Connect() *Conn {
	return &Conn{db: db}
}

// Checkpoint persists all data and truncates the WAL.
func (db *Database) Checkpoint() error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.closed {
		return ErrClosed
	}
	return db.mgr.Checkpoint()
}

// EncodeColumns compresses every column of every table that benefits from
// an encoding (dictionary, frame-of-reference, or RLE — see
// docs/STORAGE_FORMAT.md), returning the number of columns now encoded.
// Checkpoints do this automatically for large columns; this call forces the
// decision immediately, regardless of size, so queries run on encoded data
// and the next checkpoint persists the compressed form.
func (db *Database) EncodeColumns() (int, error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.closed {
		return 0, ErrClosed
	}
	return db.store.EncodeAll()
}

// DeltaTableStats reports one table's delta-store gauges: pending appended
// rows, delete density, and merge activity.
type DeltaTableStats = delta.TableStats

// DeltaStats returns per-table delta-store statistics, sorted by table name.
func (db *Database) DeltaStats() []DeltaTableStats {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.closed {
		return nil
	}
	return db.mgr.DeltaStats()
}

// MergeDeltas immediately folds every table's pending delta into its indexed
// base, regardless of the merge policy, and returns the number of tables
// merged. Checkpoints do this implicitly.
func (db *Database) MergeDeltas() (int, error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.closed {
		return 0, ErrClosed
	}
	return db.mgr.MergeAll(true), nil
}

// MergeLog returns recent "storage.deltamerge" trace lines emitted by delta
// merges, oldest first (bounded; older entries are dropped).
func (db *Database) MergeLog() []string {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.closed {
		return nil
	}
	return db.mgr.MergeLog()
}

// ColFootprint reports one column's resident storage size next to what the
// same rows would cost raw — the measurement behind the README's bytes/row
// table and the CI compression gate.
type ColFootprint = storage.ColFootprint

// TableFootprint measures the storage footprint of every column of a table.
func (db *Database) TableFootprint(name string) ([]ColFootprint, error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.closed {
		return nil, ErrClosed
	}
	tbl, ok := db.store.Get(name)
	if !ok {
		return nil, fmt.Errorf("monetlite: %w: %s", storage.ErrNoSuchTable, name)
	}
	return tbl.Footprint()
}

// InMemory reports whether this database discards its data on Close.
func (db *Database) InMemory() bool { return db.store.InMemory() }

// Tables returns the names of all tables.
func (db *Database) Tables() []string { return db.store.TableNames() }

// Close checkpoints (persistent databases) and releases all resources.
// Zero-copy result columns obtained from this database must not be used
// afterwards.
func (db *Database) Close() error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.closed {
		return nil
	}
	db.closed = true
	db.mgr.StopMerger()
	var first error
	if !db.store.InMemory() {
		if err := db.mgr.Checkpoint(); err != nil {
			first = err
		}
	}
	if db.log != nil {
		if err := db.log.Close(); err != nil && first == nil {
			first = err
		}
	}
	if err := db.store.Close(); err != nil && first == nil {
		first = err
	}
	return first
}

func (db *Database) isClosed() bool {
	db.mu.Lock()
	defer db.mu.Unlock()
	return db.closed
}
